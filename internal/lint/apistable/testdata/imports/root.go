// Package app is the apistable fixture's public surface: internal/api is
// its blessed entry point, anything else internal is off limits.
package app

import (
	"example.com/fixture/internal/api"
	"example.com/fixture/internal/secret" // want "imports internal/secret outside the blessed entry points"
)

// Open is the public entry point.
func Open() string {
	return api.Name() + secret.Token()
}
