// Package secret is engine-internal state no public package may reach.
package secret

// Token returns internal state.
func Token() string { return "s" }
