// Package api is the blessed entry point; internal packages may import
// each other freely.
package api

import "example.com/fixture/internal/secret"

// Name returns the engine name.
func Name() string { return "engine" + secret.Token() }
