// Package apistable enforces the public-surface import discipline: the
// packages outside internal/ — the embeddable root API, the database/sql
// driver, the CLI/bench commands, and the examples — may only reach into
// internal/ through their blessed entry points. Everything else must flow
// through the public API, so internal packages stay freely refactorable
// and the public surface stays the only supported contract.
//
// Internal packages may import each other freely; the discipline applies
// at the boundary. A blessed entry covers its whole subtree (blessing
// "internal/lint" also blesses "internal/lint/lockcheck").
package apistable

import (
	"go/ast"
	"sort"
	"strings"

	"github.com/dataspread/dataspread/internal/lint"
)

// Blessed is the repo's import table: module-relative importer path (""
// is the module root) to the internal subtrees it may import. Paths
// absent from the table get no internal imports at all.
var Blessed = map[string][]string{
	// The embeddable public API composes the engine from these.
	"": {
		"internal/catalog",
		"internal/core",
		"internal/dberr",
		"internal/sheet",
		"internal/sqlexec",
		"internal/sqlparser",
	},
	// The database/sql driver wraps the root package only.
	"driver": {},
	// The network client shares the wire codec and error taxonomy with the
	// serving tier; everything else goes through the root package.
	"client": {
		"internal/dberr",
		"internal/wire",
	},
	// The daemon binary is the serving tier's entry point.
	"cmd/dataspreadd": {
		"internal/server",
	},
	// The benchmark harness measures internals directly by design.
	"cmd/dsbench": {
		"internal/baseline",
		"internal/core",
		"internal/datagen",
		"internal/index/positional",
		"internal/sheet",
		"internal/sqlexec",
		"internal/storage/cellstore",
		"internal/storage/pager",
		"internal/storage/tablestore",
		// -serve boots an in-process dataspreadd for the load benchmark.
		"internal/server",
	},
	// The linter binary drives the analysis framework.
	"cmd/dslint": {"internal/lint"},
	// The netclient example boots an in-process dataspreadd so it runs
	// standalone; everything it demonstrates goes through `client`.
	"examples/netclient": {"internal/server"},
}

// Analyzer is the apistable analysis over the repo's Blessed table.
var Analyzer = New(Blessed)

// New builds an apistable analyzer over a custom blessed-import table.
// The fixture suite uses it; the repo uses Analyzer.
func New(blessed map[string][]string) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "apistable",
		Doc:  "packages outside internal/ may import internal packages only through blessed entry points",
		Run: func(pass *lint.Pass) error {
			return run(pass, blessed)
		},
	}
}

func run(pass *lint.Pass, blessed map[string][]string) error {
	rel := pass.Pkg.RelPath
	if rel == "internal" || strings.HasPrefix(rel, "internal/") {
		return nil // internal packages import each other freely
	}
	allowed := blessed[rel]
	modPath := pass.Mod.Path
	for _, file := range pass.Files() {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			target, ok := strings.CutPrefix(path, modPath+"/")
			if !ok {
				continue
			}
			if target != "internal" && !strings.HasPrefix(target, "internal/") {
				continue
			}
			if !importAllowed(allowed, target) {
				pass.Reportf(imp.Pos(), "%s imports %s outside the blessed entry points: route through the public API or extend the apistable.Blessed table deliberately", displayPath(rel), target)
			}
		}
	}
	return nil
}

// importAllowed reports whether target falls inside any blessed subtree.
func importAllowed(allowed []string, target string) bool {
	for _, a := range allowed {
		if target == a || strings.HasPrefix(target, a+"/") {
			return true
		}
	}
	return false
}

func displayPath(rel string) string {
	if rel == "" {
		return "the module root"
	}
	return rel
}

// Entries returns the blessed table as sorted "importer -> target" lines
// for documentation and debugging output.
func Entries(blessed map[string][]string) []string {
	var out []string
	for from, targets := range blessed {
		for _, t := range targets {
			out = append(out, displayPath(from)+" -> "+t)
		}
	}
	sort.Strings(out)
	return out
}

var _ = ast.IsExported
