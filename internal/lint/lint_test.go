package lint_test

import (
	"go/ast"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/lint"
)

// reportFuncs flags every function declaration, giving the suppression
// machinery something deterministic to filter.
var reportFuncs = &lint.Analyzer{
	Name: "test",
	Doc:  "reports every function declaration",
	Run: func(pass *lint.Pass) error {
		for _, file := range pass.Files() {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressions(t *testing.T) {
	mod, err := lint.LoadDir("testdata/suppress", "example.com/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(mod, []*lint.Analyzer{reportFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		// above and sameLine are suppressed with justification; the rest
		// survive, and the justification-less ignore is itself a finding.
		"test: func plain",
		"test: func wrongAnalyzer",
		"test: func missingJustification",
		"dslint: malformed //lint:ignore: need an analyzer name and a justification (//lint:ignore <analyzer> <why>)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(got), got, len(want))
	}
	// Run sorts by position; compare as sets keyed by content.
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for _, g := range got {
		if !wantSet[g] {
			t.Errorf("unexpected diagnostic %q", g)
		}
		delete(wantSet, g)
	}
	for w := range wantSet {
		t.Errorf("missing diagnostic %q", w)
	}
}

func TestAnnotationsPoseOnlyDirectiveLines(t *testing.T) {
	// The annotation grammar documented in package lint's own doc comment
	// (indented examples, prose mentions) must not bind: only comments
	// that START with dslint: are directives. The lint package documents
	// every directive; if prose bound, the package would annotate itself.
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Ann.PkgHas("github.com/dataspread/dataspread/internal/lint", "errdomain") {
		t.Fatal("prose mention of dslint:errdomain in package docs was bound as a directive")
	}
	for _, pkg := range []string{
		"github.com/dataspread/dataspread/internal/catalog",
		"github.com/dataspread/dataspread/internal/sqlexec",
		"github.com/dataspread/dataspread/internal/core",
		"github.com/dataspread/dataspread/internal/txn",
	} {
		if !mod.Ann.PkgHas(pkg, "errdomain") {
			t.Errorf("%s should carry dslint:errdomain", pkg)
		}
	}
	if len(mod.Ann.Objects("lock", "engine")) != 1 {
		t.Errorf("want exactly one engine lock annotation, got %d", len(mod.Ann.Objects("lock", "engine")))
	}
}

func TestLoadModuleFindsAllPackages(t *testing.T) {
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"internal/sqlexec", "internal/core", "internal/txn", "cmd/dslint"} {
		full := mod.Path + "/" + p
		if mod.ByPath[full] == nil {
			t.Errorf("package %s not loaded", full)
		}
	}
	// Topological order: every module-internal dependency precedes its
	// importer.
	seen := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		for _, imp := range pkg.Imports {
			if strings.HasPrefix(imp, mod.Path) && !seen[imp] {
				t.Errorf("%s loaded before its dependency %s", pkg.PkgPath, imp)
			}
		}
		seen[pkg.PkgPath] = true
	}
}
