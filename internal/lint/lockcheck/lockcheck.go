// Package lockcheck enforces the engine's locking invariants:
//
//  1. No goroutine may park on another goroutine while the engine lock is
//     held: channel sends, receives, blocking selects, and calls to
//     functions (or func-typed parameters) annotated `// dslint:parks`
//     inside a region where the engine lock is held are findings. This is
//     the deadlock shape PR 5's streaming executor had to dodge — holding
//     the database read lock while parked on the consumer's row channel
//     stalls every writer behind a consumer that may never drain.
//  2. Functions annotated `// dslint:requires(engine)` — storage, index
//     and catalog operations that touch engine-guarded mutable state —
//     must only be called with the engine lock held, or from a function
//     that is itself annotated requires(engine).
//  3. The engine lock is not re-entrant: acquiring it (directly or by
//     calling a function annotated `// dslint:locks(engine)`) while it is
//     already held is a finding.
//  4. Functions annotated `// dslint:nolock(engine)` — morsel workers and
//     other hot-path code that runs against a pinned snapshot — must never
//     touch the engine lock: acquiring it directly, or calling a function
//     that acquires it (annotated `locks(engine)` or inferred to lock from
//     its body, propagated through static calls), is a finding. This is
//     the lock-freedom contract of PR 8's parallel executor: a worker that
//     reaches for db.mu serializes the whole pool behind the writers the
//     snapshot was supposed to make irrelevant.
//
// The engine lock is the mutex field annotated `// dslint:lock(engine)`
// (sqlexec.Database.mu in this repository). Held regions are tracked
// lexically within each function: from a `x.Lock()`/`x.RLock()` statement
// to the matching `Unlock`/`RUnlock`, or to the end of the function when
// the unlock is deferred. Function literals passed as call arguments
// inside a held region are analyzed as running under the lock (scan
// callbacks execute synchronously); `go` and `defer` literals are not.
//
// Functions whose own bodies perform blocking channel operations are
// inferred to park, and the property propagates through static calls
// module-wide, so most code needs no annotation; `// dslint:parks` covers
// dynamic call edges (func-typed parameters and interface methods) the
// inference cannot see.
package lockcheck

import (
	"go/ast"
	"go/types"
	"sync"

	"github.com/dataspread/dataspread/internal/lint"
)

// Analyzer is the lockcheck analysis.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "engine-lock hygiene: no parking under the lock, requires(engine) callees only under the lock, no re-entry",
	Run:  run,
}

// modFacts caches the module-wide park inference per loaded module (the
// analyzer runs once per package but the call graph is global).
var (
	factsMu sync.Mutex
	facts   = map[*lint.Module]*parkFacts{}
)

type parkFacts struct {
	parks map[types.Object]bool
	// acquires marks functions that take the engine lock somewhere in their
	// body or (transitively, through static calls) in a callee — the set the
	// nolock(engine) rule checks call sites against.
	acquires map[types.Object]bool
}

func run(pass *lint.Pass) error {
	ann := pass.Ann()
	engine := map[types.Object]bool{}
	for _, obj := range ann.Objects("lock", "engine") {
		engine[obj] = true
	}
	if len(engine) == 0 {
		return nil // nothing to check against
	}
	modf := parkFactsFor(pass.Mod)
	c := &checker{
		pass:     pass,
		engine:   engine,
		parks:    modf.parks,
		acquires: modf.acquires,
		visited:  map[*ast.FuncLit]bool{},
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass     *lint.Pass
	engine   map[types.Object]bool // mutex fields annotated lock(engine)
	parks    map[types.Object]bool // inferred + annotated parking functions
	acquires map[types.Object]bool // inferred + annotated lock-acquiring functions

	// Per-function state.
	fnObj      types.Object          // current function object
	parkParams map[types.Object]bool // parameters annotated parks(...) for fnObj
	exempt     bool                  // fnObj is annotated requires(engine)
	nolock     bool                  // fnObj is annotated nolock(engine)
	visited    map[*ast.FuncLit]bool // literals analyzed in a held context
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ann := c.pass.Ann()
	c.fnObj = c.pass.ObjectOf(fd.Name)
	c.exempt = ann.Has(c.fnObj, "requires", "engine")
	c.nolock = ann.Has(c.fnObj, "nolock", "engine")
	if c.exempt && c.nolock {
		c.pass.Reportf(fd.Name.Pos(), "%s is annotated both dslint:requires(engine) and dslint:nolock(engine); the contracts are contradictory", fd.Name.Name)
	}
	c.parkParams = map[types.Object]bool{}
	if d, ok := ann.Directive(c.fnObj, "parks"); ok && len(d.Args) > 0 {
		for _, arg := range d.Args {
			if obj := paramByName(c.fnObj, arg); obj != nil {
				c.parkParams[obj] = true
			} else {
				c.pass.Reportf(fd.Name.Pos(), "dslint:parks names %q, which is not a func-typed parameter of %s", arg, fd.Name.Name)
			}
		}
	}
	c.walkStmts(fd.Body.List, c.exempt)
	// Analyze function literals that were not already covered by a
	// held-context walk as independent (lock-free entry) functions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !c.visited[lit] {
			c.visited[lit] = true
			c.walkStmts(lit.Body.List, false)
		}
		return true
	})
}

// paramByName resolves a named parameter of a function object, provided it
// has function type (the only kind that can park when called).
func paramByName(fn types.Object, name string) types.Object {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() == name {
			if _, ok := p.Type().Underlying().(*types.Signature); ok {
				return p
			}
			return nil
		}
	}
	return nil
}

// walkStmts walks a statement list tracking whether the engine lock is
// held, reporting violations inside held regions and requires(engine)
// calls outside them. It returns the held state after the list runs
// (branches that terminate do not contribute).
func (c *checker) walkStmts(stmts []ast.Stmt, held bool) bool {
	for _, stmt := range stmts {
		held = c.walkStmt(stmt, held)
	}
	return held
}

func (c *checker) walkStmt(stmt ast.Stmt, held bool) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if kind := c.engineLockOp(s.X); kind != "" {
			switch kind {
			case "Lock", "RLock":
				switch {
				case held:
					c.pass.Reportf(s.Pos(), "engine lock %s while the engine lock is already held (not re-entrant)", kind)
				case c.nolock:
					c.pass.Reportf(s.Pos(), "engine lock %s inside a function annotated dslint:nolock(engine)", kind)
				}
				return true
			case "Unlock", "RUnlock":
				return false
			}
		}
		c.scanExpr(s.X, held)
		return held
	case *ast.DeferStmt:
		if kind := c.engineLockOp(s.Call); kind == "Unlock" || kind == "RUnlock" {
			// Lock held until return; keep held as-is.
			return held
		}
		// The deferred call runs at return, after any lexical unlock; only
		// analyze its literal body for its own lock regions (done by the
		// independent pass), not under the current held state.
		return held
	case *ast.GoStmt:
		// A spawned goroutine does not run under this goroutine's locks.
		return held
	case *ast.SendStmt:
		if held {
			c.pass.Reportf(s.Pos(), "channel send while the engine lock is held")
		}
		c.scanExpr(s.Chan, held)
		c.scanExpr(s.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		c.scanExpr(s.Cond, held)
		thenHeld, thenTerm := c.walkBranch(s.Body.List, held)
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseHeld, elseTerm = c.walkBranch(e.List, held)
			default:
				elseHeld = c.walkStmt(s.Else, held)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return held
		case thenTerm:
			return elseHeld
		case elseTerm:
			return thenHeld
		case thenHeld == elseHeld:
			return thenHeld
		default:
			// Branches disagree; assume unlocked to avoid false positives
			// downstream.
			return false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, held)
		}
		if s.Post != nil {
			c.walkStmt(s.Post, held)
		}
		return c.walkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		if held {
			if tv, ok := c.pass.TypesInfo().Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.pass.Reportf(s.Pos(), "range over a channel while the engine lock is held")
				}
			}
		}
		c.scanExpr(s.X, held)
		return c.walkStmts(s.Body.List, held)
	case *ast.SelectStmt:
		if held && selectBlocks(s) {
			c.pass.Reportf(s.Pos(), "blocking select while the engine lock is held")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, held)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

// walkBranch walks a branch body and additionally reports whether the
// branch terminates (so its lock state cannot flow to the statements after
// the enclosing construct).
func (c *checker) walkBranch(stmts []ast.Stmt, held bool) (heldAfter, terminates bool) {
	heldAfter = c.walkStmts(stmts, held)
	if n := len(stmts); n > 0 {
		switch last := stmts[n-1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			terminates = true
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					terminates = true
				}
			}
		}
	}
	return heldAfter, terminates
}

// scanExpr reports violations inside one expression evaluated with the
// given lock state: blocking channel receives, parking or lock-acquiring
// calls when held, and requires(engine) calls when not held. Function
// literals passed as arguments of a call are walked with the caller's lock
// state (callbacks run synchronously); literals merely referenced are left
// to the independent pass.
func (c *checker) scanExpr(expr ast.Expr, held bool) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // handled at the call sites that pass them
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" && held {
				c.pass.Reportf(e.Pos(), "channel receive while the engine lock is held")
			}
		case *ast.CallExpr:
			c.checkCall(e, held)
			for _, arg := range e.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					c.visited[lit] = true
					c.walkStmts(lit.Body.List, held)
				}
			}
		}
		return true
	})
}

// checkCall applies the call-site rules for one call expression.
func (c *checker) checkCall(call *ast.CallExpr, held bool) {
	obj := c.pass.CalleeOf(call)
	if obj == nil {
		return
	}
	ann := c.pass.Ann()
	name := obj.Name()
	if c.nolock && (c.acquires[obj] || ann.Has(obj, "locks", "engine")) {
		c.pass.Reportf(call.Pos(), "call to %s acquires the engine lock inside a function annotated dslint:nolock(engine)", name)
		return
	}
	if held {
		switch {
		case c.parkParams[obj]:
			c.pass.Reportf(call.Pos(), "call to %s may park on another goroutine while the engine lock is held (parameter is annotated dslint:parks)", name)
		case c.parks[obj] || ann.Has(obj, "parks", ""):
			c.pass.Reportf(call.Pos(), "call to %s may park on another goroutine while the engine lock is held", name)
		case ann.Has(obj, "locks", "engine"):
			c.pass.Reportf(call.Pos(), "call to %s acquires the engine lock while it is already held (not re-entrant)", name)
		}
		return
	}
	if ann.Has(obj, "requires", "engine") && !c.exempt {
		c.pass.Reportf(call.Pos(), "call to %s requires the engine lock, which is not held here (annotate the caller dslint:requires(engine) or take the lock)", name)
	}
}

// engineLockOp reports the lock-method name ("Lock", "RLock", "Unlock",
// "RUnlock") when expr is a call of that method on an engine-annotated
// mutex field; "" otherwise.
func (c *checker) engineLockOp(expr ast.Expr) string {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := c.pass.TypesInfo().Selections[inner]; ok && c.engine[s.Obj()] {
		return sel.Sel.Name
	}
	// Package-level or local identifier selector (fixtures): x.mu where mu
	// resolves directly.
	if obj := c.pass.ObjectOf(inner.Sel); obj != nil && c.engine[obj] {
		return sel.Sel.Name
	}
	return ""
}

// selectBlocks reports whether a select statement can park: it has no
// default clause (an empty select blocks forever and also counts).
func selectBlocks(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return false // default clause: non-blocking
		}
	}
	return true
}

// parkFactsFor computes (once per module) two call-graph facts: the set of
// functions that may park (bodies with a blocking channel operation outside
// any nested function literal, plus everything annotated dslint:parks) and
// the set that acquire the engine lock (bodies that Lock/RLock an annotated
// mutex, plus everything annotated dslint:locks(engine)). Both propagate
// through statically resolvable calls.
func parkFactsFor(mod *lint.Module) *parkFacts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := facts[mod]; ok {
		return f
	}
	f := &parkFacts{
		parks:    map[types.Object]bool{},
		acquires: map[types.Object]bool{},
	}
	for _, obj := range mod.Ann.Objects("parks", "") {
		// Only zero-arg parks annotations mark the function itself;
		// parks(param) marks parameters, handled at call sites.
		if d, ok := mod.Ann.Directive(obj, "parks"); ok && len(d.Args) == 0 {
			f.parks[obj] = true
		}
	}
	for _, obj := range mod.Ann.Objects("locks", "engine") {
		f.acquires[obj] = true
	}
	engine := map[types.Object]bool{}
	for _, obj := range mod.Ann.Objects("lock", "engine") {
		engine[obj] = true
	}

	// calls[f] = statically resolved callee objects of f.
	calls := map[types.Object][]types.Object{}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				if bodyBlocks(fd.Body, pkg.Info) {
					f.parks[obj] = true
				}
				if bodyLocks(fd.Body, pkg.Info, engine) {
					f.acquires[obj] = true
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeObj(call, pkg.Info); callee != nil {
						calls[obj] = append(calls[obj], callee)
					}
					return true
				})
			}
		}
	}
	// Fixpoint: a function that calls a parking (or lock-acquiring)
	// function parks (acquires) itself.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				if f.parks[callee] && !f.parks[fn] {
					f.parks[fn] = true
					changed = true
				}
				if f.acquires[callee] && !f.acquires[fn] {
					f.acquires[fn] = true
					changed = true
				}
			}
		}
	}
	facts[mod] = f
	return f
}

// bodyLocks reports whether a function body acquires an engine-annotated
// mutex itself (ignoring nested function literals and go statements, which
// run on their own schedules and are analyzed independently).
func bodyLocks(body *ast.BlockStmt, info *types.Info, engine map[types.Object]bool) bool {
	if len(engine) == 0 {
		return false
	}
	locks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if locks {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := info.Selections[inner]; ok && engine[s.Obj()] {
				locks = true
			} else if obj := info.Uses[inner.Sel]; obj != nil && engine[obj] {
				locks = true
			}
		}
		return true
	})
	return locks
}

// bodyBlocks reports whether a function body performs a blocking channel
// operation itself (ignoring nested function literals, which run on their
// own goroutines or schedules).
func bodyBlocks(body *ast.BlockStmt, info *types.Info) bool {
	blocks := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blocks {
			return false
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks = true
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				blocks = true
			}
		case *ast.SelectStmt:
			if selectBlocks(e) {
				blocks = true
			}
			return false // clause bodies only run after the (possibly blocking) comm
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blocks = true
				}
			}
		}
		return true
	})
	return blocks
}

// calleeObj resolves a call's target like Pass.CalleeOf, without a Pass.
func calleeObj(call *ast.CallExpr, info *types.Info) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Defs[fun]; obj != nil {
			return obj
		}
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		if obj := info.Defs[fun.Sel]; obj != nil {
			return obj
		}
		return info.Uses[fun.Sel]
	}
	return nil
}
