package lockcheck_test

import (
	"testing"

	"github.com/dataspread/dataspread/internal/lint/linttest"
	"github.com/dataspread/dataspread/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	linttest.Run(t, "testdata/engine", lockcheck.Analyzer)
}
