// Package engine is the lockcheck fixture: a miniature of the real
// engine's locking discipline, with one true positive per rule and the
// matching clean shapes alongside.
package engine

import "sync"

// DB mirrors sqlexec.Database: one RWMutex guards the mutable state.
type DB struct {
	mu sync.RWMutex // dslint:lock(engine)
	n  int
	ch chan int
}

// dslint:requires(engine)
func (db *DB) countLocked() int { return db.n }

// Count is the clean shape: take the lock, touch guarded state, release.
//
// dslint:locks(engine)
func (db *DB) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.countLocked()
}

// BadUnlockedAccess calls a requires(engine) helper without the lock.
func (db *DB) BadUnlockedAccess() int {
	return db.countLocked() // want "requires the engine lock, which is not held"
}

// StreamBad reproduces the PR-5 deadlock: the producer hands a row to the
// consumer channel while still holding the engine read lock. If the
// consumer is slow (or gone), the send parks with the lock held and every
// writer behind it deadlocks.
func (db *DB) StreamBad(out chan<- int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out <- db.countLocked() // want "channel send while the engine lock is held"
}

// StreamGood is the batched fix: collect under the lock, release, emit.
func (db *DB) StreamGood(out chan<- int) {
	db.mu.RLock()
	v := db.countLocked()
	db.mu.RUnlock()
	out <- v
}

// BadReceive parks on a channel receive while holding the lock.
func (db *DB) BadReceive() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return <-db.ch // want "channel receive while the engine lock is held"
}

// BadSelect parks on a blocking select (no default) while locked.
func (db *DB) BadSelect(out chan<- int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	select { // want "blocking select while the engine lock is held"
	case out <- db.n:
	case v := <-db.ch:
		_ = v
	}
}

// GoodSelect never parks: the default arm makes the select non-blocking.
func (db *DB) GoodSelect(out chan<- int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	select {
	case out <- db.n:
	default:
	}
}

// BadRangeChan parks once per element while locked.
func (db *DB) BadRangeChan() (sum int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for v := range db.ch { // want "range over a channel while the engine lock is held"
		sum += v
	}
	return sum
}

// BadReentry re-acquires the engine lock while it is already held.
func (db *DB) BadReentry() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mu.RLock() // want "engine lock RLock while the engine lock is already held"
	db.n++
	db.mu.RUnlock()
}

// BadLocksCall calls a locks(engine) function with the lock held.
func (db *DB) BadLocksCall() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.Count() // want "call to Count acquires the engine lock while it is already held"
}

// waitDone blocks on another goroutine's completion signal; lockcheck
// infers it parks from its body, with no annotation needed.
func waitDone(done chan struct{}) {
	<-done
}

// BadInferredPark calls the inferred-parking helper while locked.
func (db *DB) BadInferredPark(done chan struct{}) {
	db.mu.Lock()
	defer db.mu.Unlock()
	waitDone(done) // want "call to waitDone may park on another goroutine while the engine lock is held"
}

// emitRows mirrors streamSelect: yield hands rows to a possibly-parked
// consumer, so calling it under the engine lock is the PR-5 bug.
//
// dslint:parks(yield)
func (db *DB) emitRows(yield func(int) error) error {
	db.mu.RLock()
	v := db.countLocked()
	db.mu.RUnlock()
	return yield(v)
}

// BadYieldUnderLock is emitRows with the revert applied: yield moved
// inside the locked region.
//
// dslint:parks(yield)
func (db *DB) BadYieldUnderLock(yield func(int) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return yield(db.countLocked()) // want "call to yield may park on another goroutine while the engine lock is held \\(parameter is annotated dslint:parks\\)"
}

// BadParksArg: the annotation must name a func-typed parameter.
//
// dslint:parks(nosuch)
func (db *DB) BadParksArg() { // want "dslint:parks names \"nosuch\", which is not a func-typed parameter of BadParksArg"
	db.n++
}

// SuppressedSend shows a justified suppression silencing a finding.
func (db *DB) SuppressedSend(out chan<- int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	//lint:ignore lockcheck fixture: consumer is guaranteed unbuffered-ready in this test harness
	out <- db.n
}

// ScanMorsel mirrors PR 8's morsel worker: annotated lock-free and clean —
// it only touches the pinned snapshot it was handed.
//
// dslint:nolock(engine)
func ScanMorsel(rows []int) (sum int) {
	for _, v := range rows {
		sum += v
	}
	return sum
}

// BadNolockAcquire takes the engine lock inside a nolock(engine) region.
//
// dslint:nolock(engine)
func (db *DB) BadNolockAcquire() int {
	db.mu.RLock() // want "engine lock RLock inside a function annotated dslint:nolock\\(engine\\)"
	defer db.mu.RUnlock()
	return db.n
}

// BadNolockLocksCall calls an annotated locks(engine) function from
// nolock-contracted code.
//
// dslint:nolock(engine)
func (db *DB) BadNolockLocksCall() int {
	return db.Count() // want "call to Count acquires the engine lock inside a function annotated dslint:nolock\\(engine\\)"
}

// bumpLocked acquires the engine lock with no annotation at all; the
// module-wide inference must still classify it as lock-acquiring.
func (db *DB) bumpLocked() {
	db.mu.Lock()
	db.n++
	db.mu.Unlock()
}

// bumpWrapper acquires only transitively, through bumpLocked.
func (db *DB) bumpWrapper() { db.bumpLocked() }

// BadNolockInferred reaches the engine lock two static calls deep.
//
// dslint:nolock(engine)
func (db *DB) BadNolockInferred() {
	db.bumpWrapper() // want "call to bumpWrapper acquires the engine lock inside a function annotated dslint:nolock\\(engine\\)"
}

// BadContradiction pairs the two contracts that cannot both hold.
//
// dslint:requires(engine)
// dslint:nolock(engine)
func (db *DB) BadContradiction() int { // want "BadContradiction is annotated both dslint:requires\\(engine\\) and dslint:nolock\\(engine\\)"
	return db.n
}
