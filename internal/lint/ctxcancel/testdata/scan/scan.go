// Package scan is the ctxcancel fixture: a miniature executor with a
// cancellation poll, row/cell types and per-row scan entry points.
package scan

// Value is one spreadsheet cell; a []Value is one row.
//
// dslint:cell
type Value struct{ n float64 }

// RowID identifies one stored row.
//
// dslint:row
type RowID uint64

type env struct{ ticks int }

// check is the cooperative cancellation poll.
//
// dslint:poll
func (e *env) check() error {
	e.ticks++
	return nil
}

type store struct{ rows [][]Value }

// Scan visits every live row.
//
// dslint:perrow
func (s *store) Scan(fn func(id RowID, row []Value) bool) {
	for i, r := range s.rows {
		if !fn(RowID(i), r) {
			return
		}
	}
}

// BadRowLoop iterates a row set without ever polling.
func BadRowLoop(e *env, rows [][]Value) float64 {
	var sum float64
	for _, row := range rows { // want "row loop without cancellation poll"
		for _, v := range row {
			sum += v.n
		}
	}
	return sum
}

// GoodRowLoop polls once per row; the inner per-cell loop is bounded by
// the column count and needs no poll of its own.
func GoodRowLoop(e *env, rows [][]Value) (float64, error) {
	var sum float64
	for _, row := range rows {
		if err := e.check(); err != nil {
			return 0, err
		}
		for _, v := range row {
			sum += v.n
		}
	}
	return sum, nil
}

// BadIDLoop streams row identities without polling.
func BadIDLoop(e *env, ids []RowID) int {
	n := 0
	for range ids { // want "row loop without cancellation poll"
		n++
	}
	return n
}

// GoodClosureLoop polls through a local closure, the scanIndexPath shape.
func GoodClosureLoop(e *env, ids []RowID) (int, error) {
	n := 0
	keep := func(id RowID) error {
		if err := e.check(); err != nil {
			return err
		}
		n++
		return nil
	}
	for _, id := range ids {
		if err := keep(id); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// BadCallback passes a per-row callback that never polls.
func BadCallback(e *env, s *store) float64 {
	var sum float64
	s.Scan(func(id RowID, row []Value) bool { // want "per-row callback passed to Scan without cancellation poll"
		for _, v := range row {
			sum += v.n
		}
		return true
	})
	return sum
}

// GoodCallback polls inside the callback.
func GoodCallback(e *env, s *store) float64 {
	var sum float64
	s.Scan(func(id RowID, row []Value) bool {
		if err := e.check(); err != nil {
			return false
		}
		for _, v := range row {
			sum += v.n
		}
		return true
	})
	return sum
}

// NoEnvLoop has no poll access at all: it could not poll if it wanted to,
// so it is not held to the invariant (the caller's loop is).
func NoEnvLoop(rows [][]Value) int {
	n := 0
	for range rows {
		n++
	}
	return n
}
