package ctxcancel_test

import (
	"testing"

	"github.com/dataspread/dataspread/internal/lint/ctxcancel"
	"github.com/dataspread/dataspread/internal/lint/linttest"
)

func TestCtxcancel(t *testing.T) {
	linttest.Run(t, "testdata/scan", ctxcancel.Analyzer)
}
