// Package ctxcancel enforces the executor's cancellation invariant: every
// row-at-a-time loop must reach the cooperative cancellation poll
// (execEnv.check) so a context cancel or statement timeout interrupts the
// scan within one poll interval, never after an unbounded amount of work.
//
// The analysis is annotation-driven so it states the invariant once and
// mechanically finds the loops:
//
//   - `// dslint:poll` marks THE poll method (execEnv.check). A function
//     whose receiver or parameters can reach a poll method is
//     "poll-capable" — it had the means to poll, so its row loops must.
//   - `// dslint:row` marks types whose values identify one row
//     (tablestore.RowID); `// dslint:cell` marks single-cell types whose
//     slices form one row (sheet.Value, so [][]Value is a row set). A
//     range over rows — []row or [][]cell — inside a poll-capable
//     function must lexically contain a call to the poll method, to a
//     `// dslint:polls` helper, or to a local closure that polls.
//   - `// dslint:perrow` marks callbacks-per-row entry points (Store.Scan,
//     Store.ScanCols, index Ascend/Descend). A func-literal callback
//     passed to one from a poll-capable function must poll the same way:
//     the callback runs once per visited row, so it is the loop body.
package ctxcancel

import (
	"go/ast"
	"go/types"

	"github.com/dataspread/dataspread/internal/lint"
)

// Analyzer is the ctxcancel analysis.
var Analyzer = &lint.Analyzer{
	Name: "ctxcancel",
	Doc:  "row-at-a-time loops in poll-capable executor functions must reach the cancellation poll",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pollCapable(pass, fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody walks one poll-capable function body and flags row loops and
// per-row callbacks that never reach the poll. Local closures that poll
// (keep := func(...) { env.check(); ... }) count at their call sites.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	closures := pollingClosures(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if rowRange(pass, s) && !polls(pass, closures, s.Body) {
				pass.Reportf(s.Pos(), "row loop without cancellation poll: call the dslint:poll method (execEnv.check) in the loop body so cancel/timeout can interrupt the scan")
			}
		case *ast.CallExpr:
			obj := pass.CalleeOf(s)
			if obj == nil || !pass.Ann().Has(obj, "perrow", "") {
				return true
			}
			for _, arg := range s.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				if !polls(pass, closures, lit.Body) {
					pass.Reportf(lit.Pos(), "per-row callback passed to %s without cancellation poll: call the dslint:poll method (execEnv.check) inside the callback", obj.Name())
				}
			}
		}
		return true
	})
}

// polls reports whether the block lexically contains a call to a
// dslint:poll method, a dslint:polls helper, or a polling local closure.
func polls(pass *lint.Pass, closures map[types.Object]bool, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := pass.CalleeOf(call)
		if obj != nil && (closures[obj] || pass.Ann().Has(obj, "poll", "") || pass.Ann().Has(obj, "polls", "")) {
			found = true
			return false
		}
		return true
	})
	return found
}

// pollingClosures finds local closure variables whose function literal
// polls directly (keep := func(...) { ...env.check()... }), so calling
// them inside a loop satisfies the invariant.
func pollingClosures(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	closures := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil || !polls(pass, nil, lit.Body) {
				continue
			}
			closures[obj] = true
		}
		return true
	})
	return closures
}

// rowRange reports whether the range statement iterates rows: the ranged
// expression is a slice (or array) whose element type is a dslint:row
// named type (a stream of row identities), or itself a slice of
// dslint:cell elements (a [][]cell row set). A plain []cell is ONE row —
// iterating its cells is bounded by the column count and needs no poll.
func rowRange(pass *lint.Pass, s *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo().Types[s.X]
	if !ok {
		return false
	}
	elem := elemType(tv.Type)
	if elem == nil {
		return false
	}
	if annotatedType(pass, elem, "row") {
		return true
	}
	if inner := elemType(elem); inner != nil && annotatedType(pass, inner, "cell") {
		return true
	}
	return false
}

// elemType returns the element type of a slice or array (seeing through
// named types), or nil.
func elemType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	}
	return nil
}

// annotatedType reports whether t is a named type carrying the directive.
func annotatedType(pass *lint.Pass, t types.Type, directive string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return pass.Ann().Has(named.Obj(), directive, "")
}

// pollCapable reports whether the function's receiver or parameters give
// it access to a dslint:poll method — directly (a parameter whose type
// declares one) or one struct field deep (a receiver holding an execEnv).
func pollCapable(pass *lint.Pass, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			tv, ok := pass.TypesInfo().Types[f.Type]
			if !ok {
				continue
			}
			if typeHasPoll(pass, tv.Type, true) {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// typeHasPoll reports whether t (seeing through one pointer) declares a
// dslint:poll method, or — when fields is true — has a struct field whose
// type does.
func typeHasPoll(pass *lint.Pass, t types.Type, fields bool) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if pass.Ann().Has(named.Method(i), "poll", "") {
			return true
		}
	}
	if fields {
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if typeHasPoll(pass, st.Field(i).Type(), false) {
					return true
				}
			}
		}
	}
	return false
}
