// Package suppress exercises the //lint:ignore machinery: same-line and
// line-above suppression, analyzer-name matching, and the
// missing-justification case.
package suppress

func plain() {}

//lint:ignore test fixture: suppressed from the line above
func above() {}

func sameLine() {} //lint:ignore test fixture: suppressed on the same line

//lint:ignore other fixture: wrong analyzer name, must not suppress
func wrongAnalyzer() {}

//lint:ignore test
func missingJustification() {}
