package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked module package (non-test files
// only, filtered by the current platform's build constraints).
type Package struct {
	// PkgPath is the full import path.
	PkgPath string
	// RelPath is the path relative to the module root ("" for the root
	// package).
	RelPath string
	// Dir is the package directory on disk.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the module-internal import paths of the package.
	Imports []string
}

// A Module is a fully loaded and type-checked module: every non-test
// package in dependency order, one shared FileSet, and the module-wide
// annotation table.
type Module struct {
	// Path is the module path from go.mod (or the synthetic path given to
	// LoadDir).
	Path string
	// Dir is the module root directory.
	Dir  string
	Fset *token.FileSet
	// Pkgs holds the packages in topological (dependencies-first) order.
	Pkgs   []*Package
	ByPath map[string]*Package
	Ann    *Annotations
}

// LoadModule locates the enclosing go.mod from dir and loads the whole
// module.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
	}
	return LoadDir(root, modPath)
}

// LoadDir loads the directory tree rooted at root as a module named
// modPath: every directory holding non-test Go files becomes a package at
// modPath/<relative-dir>. Directories named testdata or vendor, and hidden
// or underscore-prefixed directories, are skipped. The analyzers' fixture
// suites use it to load self-contained test trees under synthetic module
// paths.
func LoadDir(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod := &Module{
		Path:   modPath,
		Dir:    root,
		Fset:   token.NewFileSet(),
		ByPath: map[string]*Package{},
	}

	// Discover and parse the packages.
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, fmt.Errorf("lint: scan %s: %w", dir, err)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		relPath := ""
		if rel != "." {
			relPath = filepath.ToSlash(rel)
			pkgPath = modPath + "/" + relPath
		}
		pkg := &Package{PkgPath: pkgPath, RelPath: relPath, Dir: dir}
		imports := map[string]bool{}
		for _, name := range bp.GoFiles {
			file, err := parser.ParseFile(mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			pkg.Files = append(pkg.Files, file)
			for _, imp := range file.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					imports[p] = true
				}
			}
		}
		for p := range imports {
			pkg.Imports = append(pkg.Imports, p)
		}
		sort.Strings(pkg.Imports)
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.ByPath[pkgPath] = pkg
	}

	// Topologically order by module-internal imports so each package's
	// dependencies are type-checked before it.
	ordered := make([]*Package, 0, len(mod.Pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.PkgPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.PkgPath)
		case 2:
			return nil
		}
		state[p.PkgPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := mod.ByPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.PkgPath] = 2
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range mod.Pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	mod.Pkgs = ordered

	// Type-check in dependency order. Standard-library imports resolve
	// through the source importer (GOROOT/src), so no export data or
	// network is needed.
	imp := &moduleImporter{
		mod: mod,
		std: importer.ForCompiler(mod.Fset, "source", nil),
	}
	for _, pkg := range mod.Pkgs {
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, err := conf.Check(pkg.PkgPath, mod.Fset, pkg.Files, pkg.Info)
		if err != nil {
			if firstErr != nil {
				err = firstErr
			}
			return nil, fmt.Errorf("lint: type-check %s: %w", pkg.PkgPath, err)
		}
		pkg.Types = tpkg
	}

	mod.Ann = collectAnnotations(mod)
	return mod, nil
}

// moduleImporter resolves module-internal import paths to the packages
// type-checked by LoadDir and everything else through the standard
// library's source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod.ByPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import %s before it was checked", path)
		}
		return pkg.Types, nil
	}
	if path == m.mod.Path || strings.HasPrefix(path, m.mod.Path+"/") {
		return nil, fmt.Errorf("lint: unknown module package %s", path)
	}
	return m.std.Import(path)
}
