package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Run executes the analyzers over every package of the module, applies
// `//lint:ignore` suppressions, and returns the surviving diagnostics in
// file/line order. A suppression without justification text never
// suppresses anything — it becomes a finding itself, so every silenced
// diagnostic carries a reviewable reason next to it in the source.
func Run(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range mod.Pkgs {
			pass := &Pass{Analyzer: a, Mod: mod, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	diags = applySuppressions(mod, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer      string
	justification string
}

// applySuppressions drops diagnostics covered by a well-formed
// `//lint:ignore <analyzer> <justification>` on the same line or the line
// above, and reports malformed suppressions (missing analyzer name or
// justification) as dslint diagnostics.
func applySuppressions(mod *Module, diags []Diagnostic) []Diagnostic {
	// file -> line -> suppressions ending on that line.
	byLine := map[string]map[int][]suppression{}
	var malformed []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "dslint",
							Message:  "malformed //lint:ignore: need an analyzer name and a justification (//lint:ignore <analyzer> <why>)",
						})
						continue
					}
					m := byLine[pos.Filename]
					if m == nil {
						m = map[int][]suppression{}
						byLine[pos.Filename] = m
					}
					end := mod.Fset.Position(c.End()).Line
					m[end] = append(m[end], suppression{
						analyzer:      fields[0],
						justification: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		if m := byLine[d.Pos.Filename]; m != nil {
			for _, s := range append(m[d.Pos.Line], m[d.Pos.Line-1]...) {
				if s.analyzer == d.Analyzer {
					suppressed = true
					break
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return append(kept, malformed...)
}
