// Package compute implements DataSpread's compute engine (paper §3): the
// component that keeps formula results up to date as cells and database
// tables change. It maintains a dependency graph between formula cells and
// their precedents, recomputes dirty formulas in dependency order, and —
// following the paper's "computation optimisation" and "lazy computation"
// semantics — prioritises the formulas whose results are visible in the
// current window, finishing the rest asynchronously in the background.
package compute

import (
	"strings"
	"sync"

	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

// CellID identifies a cell across the workbook.
type CellID struct {
	Sheet string
	Addr  sheet.Address
}

// ErrCircular is the error value written to cells participating in a
// circular reference.
var ErrCircular = sheet.ErrorValue("#CIRC!")

// dependency-index tile geometry: precedents are indexed at tile granularity
// so "which formulas read this cell" is answered without scanning every
// formula.
const (
	depTileRows = 64
	depTileCols = 16
)

type depTile struct {
	sheetKey string
	tr, tc   int
}

type formulaNode struct {
	id   CellID
	expr formula.Expr
	refs []formula.Reference // sheet names resolved ("" replaced)
}

// external is a non-cell dependent (e.g. a DBSQL binding in the interface
// manager) that wants to be notified when any cell it reads changes.
type external struct {
	id       string
	refs     []formula.Reference
	callback func()
}

// Stats counts engine activity for experiments.
type Stats struct {
	Evaluations     uint64 // formula evaluations performed
	VisibleFirst    uint64 // evaluations performed in the priority pass
	BackgroundRuns  uint64 // background passes executed
	ExternalNotifys uint64 // external dependents notified
}

// Engine is the compute engine over one workbook. All exported methods are
// safe for concurrent use.
type Engine struct {
	mu       sync.Mutex
	book     *sheet.Book
	formulas map[CellID]*formulaNode
	// depIndex indexes range precedents at tile granularity; depExact
	// indexes single-cell precedents by exact address so wide fan-out on a
	// hot cell does not degrade dependent lookups for unrelated cells.
	depIndex  map[depTile]map[CellID]struct{}
	depExact  map[CellID]map[CellID]struct{}
	externals map[string]*external
	visible   func() map[string]sheet.Range
	stats     Stats
	bg        sync.WaitGroup
}

// New creates a compute engine over the workbook.
func New(book *sheet.Book) *Engine {
	return &Engine{
		book:      book,
		formulas:  make(map[CellID]*formulaNode),
		depIndex:  make(map[depTile]map[CellID]struct{}),
		depExact:  make(map[CellID]map[CellID]struct{}),
		externals: make(map[string]*external),
	}
}

// SetVisibleProvider registers the function that reports the currently
// visible range per sheet (the window manager). A nil provider disables
// prioritisation.
func (e *Engine) SetVisibleProvider(fn func() map[string]sheet.Range) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.visible = fn
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// FormulaCount returns the number of registered formula cells.
func (e *Engine) FormulaCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.formulas)
}

func sheetKey(name string) string { return strings.ToLower(name) }

// tilesForRange enumerates the dependency-index tiles covering a range.
func tilesForRange(sheetName string, r sheet.Range) []depTile {
	var out []depTile
	for tr := r.Start.Row / depTileRows; tr <= r.End.Row/depTileRows; tr++ {
		for tc := r.Start.Col / depTileCols; tc <= r.End.Col/depTileCols; tc++ {
			out = append(out, depTile{sheetKey: sheetKey(sheetName), tr: tr, tc: tc})
		}
	}
	return out
}

// resolveRefs fills in the owning sheet for unqualified references.
func resolveRefs(refs []formula.Reference, ownSheet string) []formula.Reference {
	out := make([]formula.Reference, len(refs))
	for i, r := range refs {
		if r.Sheet == "" {
			r.Sheet = ownSheet
		}
		out[i] = r
	}
	return out
}

// --- registration ---

// SetValue writes a literal value into a cell and recomputes dependents,
// visible-first. It returns a wait function for the background pass.
func (e *Engine) SetValue(sheetName string, a sheet.Address, v sheet.Value) (wait func()) {
	sh := e.sheetOf(sheetName)
	if sh == nil {
		return func() {}
	}
	e.mu.Lock()
	id := CellID{Sheet: sheetKey(sheetName), Addr: a}
	e.unregisterLocked(id)
	e.mu.Unlock()
	sh.SetCell(a, sheet.Cell{Value: v})
	return e.RecalcVisibleFirst(id)
}

// SetFormula parses and registers a formula cell, evaluates it, and
// recomputes dependents visible-first. DBSQL/DBTABLE formulas are rejected
// here — the core engine owns those.
func (e *Engine) SetFormula(sheetName string, a sheet.Address, src string) (wait func(), err error) {
	if name, ok := formula.IsDBFormula(src); ok {
		return func() {}, &DBFormulaError{Name: name}
	}
	expr, err := formula.Parse(src)
	if err != nil {
		return func() {}, err
	}
	sh := e.sheetOf(sheetName)
	if sh == nil {
		return func() {}, &UnknownSheetError{Name: sheetName}
	}
	id := CellID{Sheet: sheetKey(sheetName), Addr: a}
	node := &formulaNode{
		id:   id,
		expr: expr,
		refs: resolveRefs(formula.References(expr), sheetName),
	}
	e.mu.Lock()
	e.unregisterLocked(id)
	e.formulas[id] = node
	for _, ref := range node.refs {
		if ref.Range.Size() == 1 {
			key := CellID{Sheet: sheetKey(ref.Sheet), Addr: ref.Range.Start}
			set, ok := e.depExact[key]
			if !ok {
				set = make(map[CellID]struct{})
				e.depExact[key] = set
			}
			set[id] = struct{}{}
			continue
		}
		for _, t := range tilesForRange(ref.Sheet, ref.Range) {
			set, ok := e.depIndex[t]
			if !ok {
				set = make(map[CellID]struct{})
				e.depIndex[t] = set
			}
			set[id] = struct{}{}
		}
	}
	e.mu.Unlock()
	src = strings.TrimPrefix(strings.TrimSpace(src), "=")
	sh.SetCell(a, sheet.Cell{Formula: src})
	return e.RecalcVisibleFirst(id), nil
}

// ClearCell removes a cell (value or formula) and recomputes dependents.
func (e *Engine) ClearCell(sheetName string, a sheet.Address) (wait func()) {
	sh := e.sheetOf(sheetName)
	if sh == nil {
		return func() {}
	}
	id := CellID{Sheet: sheetKey(sheetName), Addr: a}
	e.mu.Lock()
	e.unregisterLocked(id)
	e.mu.Unlock()
	sh.Clear(a)
	return e.RecalcVisibleFirst(id)
}

// NotifyChanged tells the engine that cells were changed externally (e.g. a
// DBTABLE binding refreshed a region) and triggers dependent recomputation.
func (e *Engine) NotifyChanged(ids ...CellID) (wait func()) {
	return e.RecalcVisibleFirst(ids...)
}

// RegisterExternal registers a non-cell dependent: callback runs whenever any
// cell within refs changes. Used by the interface manager to refresh DBSQL
// results that reference sheet data via RANGEVALUE/RANGETABLE.
func (e *Engine) RegisterExternal(id string, refs []formula.Reference, ownSheet string, callback func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.externals[id] = &external{id: id, refs: resolveRefs(refs, ownSheet), callback: callback}
}

// UnregisterExternal removes an external dependent.
func (e *Engine) UnregisterExternal(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.externals, id)
}

// unregisterLocked removes a formula node and its dependency-index entries.
func (e *Engine) unregisterLocked(id CellID) {
	node, ok := e.formulas[id]
	if !ok {
		return
	}
	for _, ref := range node.refs {
		if ref.Range.Size() == 1 {
			key := CellID{Sheet: sheetKey(ref.Sheet), Addr: ref.Range.Start}
			if set, ok := e.depExact[key]; ok {
				delete(set, id)
				if len(set) == 0 {
					delete(e.depExact, key)
				}
			}
			continue
		}
		for _, t := range tilesForRange(ref.Sheet, ref.Range) {
			if set, ok := e.depIndex[t]; ok {
				delete(set, id)
				if len(set) == 0 {
					delete(e.depIndex, t)
				}
			}
		}
	}
	delete(e.formulas, id)
}

func (e *Engine) sheetOf(name string) *sheet.Sheet {
	for _, n := range e.book.SheetNames() {
		if strings.EqualFold(n, name) {
			sh, _ := e.book.Sheet(n)
			return sh
		}
	}
	return nil
}

// DBFormulaError reports an attempt to register a DBSQL/DBTABLE formula with
// the plain compute engine.
type DBFormulaError struct{ Name string }

func (e *DBFormulaError) Error() string {
	return "compute: " + e.Name + " formulas are evaluated by the core engine, not the compute engine"
}

// UnknownSheetError reports a reference to a sheet that does not exist.
type UnknownSheetError struct{ Name string }

func (e *UnknownSheetError) Error() string { return "compute: unknown sheet " + e.Name }
