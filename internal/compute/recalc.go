package compute

import (
	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

// bookSource adapts the workbook to the formula evaluator's DataSource.
type bookSource struct {
	engine   *Engine
	ownSheet string
}

func (b *bookSource) CellValue(sheetName string, a sheet.Address) sheet.Value {
	if sheetName == "" {
		sheetName = b.ownSheet
	}
	sh := b.engine.sheetOf(sheetName)
	if sh == nil {
		return sheet.ErrRef
	}
	return sh.Value(a)
}

func (b *bookSource) RangeValues(sheetName string, r sheet.Range) [][]sheet.Value {
	if sheetName == "" {
		sheetName = b.ownSheet
	}
	sh := b.engine.sheetOf(sheetName)
	if sh == nil {
		return nil
	}
	return sh.Values(r)
}

// dependentsOf returns the formula cells that read the given cell.
func (e *Engine) dependentsOf(id CellID) []CellID {
	var out []CellID
	// Exact single-cell precedents.
	if set, ok := e.depExact[id]; ok {
		for fid := range set {
			out = append(out, fid)
		}
	}
	// Range precedents indexed by tile.
	t := depTile{sheetKey: id.Sheet, tr: id.Addr.Row / depTileRows, tc: id.Addr.Col / depTileCols}
	set, ok := e.depIndex[t]
	if !ok {
		return out
	}
	for fid := range set {
		node := e.formulas[fid]
		if node == nil {
			continue
		}
		for _, ref := range node.refs {
			if ref.Range.Size() == 1 {
				continue // handled by the exact index
			}
			if sheetKey(ref.Sheet) == id.Sheet && ref.Range.Contains(id.Addr) {
				out = append(out, fid)
				break
			}
		}
	}
	return out
}

// dirtyClosure collects every formula transitively affected by the changed
// cells (including changed cells that are themselves formulas).
func (e *Engine) dirtyClosure(changed []CellID) map[CellID]*formulaNode {
	dirty := make(map[CellID]*formulaNode)
	var queue []CellID
	push := func(id CellID) {
		if node, ok := e.formulas[id]; ok {
			if _, seen := dirty[id]; !seen {
				dirty[id] = node
				queue = append(queue, id)
			}
		}
	}
	// Changed cells arrive in sheet-contiguous runs (e.g. a spilled query
	// result); memoize the sheet-key normalization instead of lowering the
	// same name once per cell.
	var lastRaw, lastKey string
	for _, id := range changed {
		if id.Sheet != lastRaw {
			lastRaw, lastKey = id.Sheet, sheetKey(id.Sheet)
		}
		id.Sheet = lastKey
		push(id)
		for _, dep := range e.dependentsOf(id) {
			push(dep)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, dep := range e.dependentsOf(id) {
			push(dep)
		}
	}
	return dirty
}

// buildDeps computes, for every dirty formula, which other dirty formulas it
// reads (its dirty precedents). Small reference ranges are probed address by
// address so the common case stays linear in the dirty-set size; only huge
// ranges fall back to scanning the dirty set.
func buildDeps(dirty map[CellID]*formulaNode) map[CellID][]CellID {
	depsOf := make(map[CellID][]CellID, len(dirty))
	const probeLimit = 512
	for id, node := range dirty {
		for _, ref := range node.refs {
			sk := sheetKey(ref.Sheet)
			if ref.Range.Size() <= probeLimit || ref.Range.Size() <= len(dirty) {
				for row := ref.Range.Start.Row; row <= ref.Range.End.Row; row++ {
					for col := ref.Range.Start.Col; col <= ref.Range.End.Col; col++ {
						other := CellID{Sheet: sk, Addr: sheet.Addr(row, col)}
						if other == id {
							continue
						}
						if _, ok := dirty[other]; ok {
							depsOf[id] = append(depsOf[id], other)
						}
					}
				}
				continue
			}
			for otherID := range dirty {
				if otherID != id && sk == otherID.Sheet && ref.Range.Contains(otherID.Addr) {
					depsOf[id] = append(depsOf[id], otherID)
				}
			}
		}
	}
	return depsOf
}

// topoOrder orders the dirty formulas so precedents come before dependents.
// Cells participating in a cycle are returned separately.
func topoOrder(dirty map[CellID]*formulaNode, depsOf map[CellID][]CellID) (order []CellID, cyclic []CellID) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[CellID]int, len(dirty))
	inCycle := make(map[CellID]bool)
	var visit func(id CellID)
	visit = func(id CellID) {
		switch color[id] {
		case grey:
			inCycle[id] = true
			return
		case black:
			return
		}
		color[id] = grey
		for _, p := range depsOf[id] {
			visit(p)
		}
		color[id] = black
		order = append(order, id)
	}
	for id := range dirty {
		visit(id)
	}
	if len(inCycle) > 0 {
		// Anything that (transitively) depends on a cycle member is also
		// cyclic; mark members themselves, keep the rest of the order.
		filtered := order[:0]
		for _, id := range order {
			cycle := inCycle[id]
			for _, p := range depsOf[id] {
				if inCycle[p] {
					cycle = true
				}
			}
			if cycle {
				inCycle[id] = true
				cyclic = append(cyclic, id)
			} else {
				filtered = append(filtered, id)
			}
		}
		order = filtered
	}
	return order, cyclic
}

// evaluate runs one formula and stores its value.
func (e *Engine) evaluate(node *formulaNode) {
	sh := e.sheetOf(node.id.Sheet)
	if sh == nil {
		return
	}
	env := &formula.Env{Sheet: node.id.Sheet, At: node.id.Addr, Data: &bookSource{engine: e, ownSheet: node.id.Sheet}}
	v := formula.Eval(node.expr, env)
	sh.SetComputedValue(node.id.Addr, v)
}

// isVisible reports whether a cell lies in the currently visible window.
func (e *Engine) isVisible(id CellID, visible map[string]sheet.Range) bool {
	if visible == nil {
		return false
	}
	for name, r := range visible {
		if sheetKey(name) == id.Sheet && r.Contains(id.Addr) {
			return true
		}
	}
	return false
}

// RecalcVisibleFirst recomputes every formula affected by the changed cells.
// Formulas that are visible in the current window — and the dirty precedents
// they depend on — are evaluated synchronously before this method returns;
// the remaining dirty formulas are evaluated on a background goroutine (the
// paper's lazy computation). The returned wait function blocks until the
// background pass (and external notifications) complete.
func (e *Engine) RecalcVisibleFirst(changed ...CellID) (wait func()) {
	e.mu.Lock()
	dirty := e.dirtyClosure(changed)
	deps := buildDeps(dirty)
	order, cyclic := topoOrder(dirty, deps)
	var visible map[string]sheet.Range
	if e.visible != nil {
		visible = e.visible()
	}
	// Priority set: visible dirty formulas plus their dirty precedents.
	priority := make(map[CellID]bool)
	if visible != nil {
		for id := range dirty {
			if e.isVisible(id, visible) {
				priority[id] = true
			}
		}
		// Propagate: a precedent of a priority node is priority. Walk the
		// topological order backwards so marks propagate transitively.
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			if !priority[id] {
				continue
			}
			for _, p := range deps[id] {
				priority[p] = true
			}
		}
	} else {
		// No window provider: everything is priority (fully synchronous).
		for id := range dirty {
			priority[id] = true
		}
	}
	// Mark circular cells immediately.
	for _, id := range cyclic {
		if sh := e.sheetOf(id.Sheet); sh != nil {
			sh.SetComputedValue(id.Addr, ErrCircular)
		}
	}
	// Evaluate the priority pass synchronously (in topo order).
	var background []CellID
	for _, id := range order {
		if priority[id] {
			e.evaluate(dirty[id])
			e.stats.Evaluations++
			e.stats.VisibleFirst++
		} else {
			background = append(background, id)
		}
	}
	// Collect external dependents affected by the changed cells or by any
	// recomputed formula.
	notif := e.affectedExternalsLocked(changed, dirty)
	bgNodes := make([]*formulaNode, 0, len(background))
	for _, id := range background {
		bgNodes = append(bgNodes, dirty[id])
	}
	e.mu.Unlock()

	done := make(chan struct{})
	e.bg.Add(1)
	go func() {
		defer e.bg.Done()
		defer close(done)
		for _, node := range bgNodes {
			e.evaluate(node)
			e.mu.Lock()
			e.stats.Evaluations++
			e.mu.Unlock()
		}
		if len(bgNodes) > 0 {
			e.mu.Lock()
			e.stats.BackgroundRuns++
			e.mu.Unlock()
		}
		for _, ext := range notif {
			ext.callback()
			e.mu.Lock()
			e.stats.ExternalNotifys++
			e.mu.Unlock()
		}
	}()
	return func() { <-done }
}

// RecalcAll synchronously recomputes every registered formula in dependency
// order (used after bulk loads and by the naive baseline comparison).
func (e *Engine) RecalcAll() {
	e.mu.Lock()
	dirty := make(map[CellID]*formulaNode, len(e.formulas))
	for id, node := range e.formulas {
		dirty[id] = node
	}
	order, cyclic := topoOrder(dirty, buildDeps(dirty))
	e.mu.Unlock()
	for _, id := range cyclic {
		if sh := e.sheetOf(id.Sheet); sh != nil {
			sh.SetComputedValue(id.Addr, ErrCircular)
		}
	}
	for _, id := range order {
		e.evaluate(dirty[id])
		e.mu.Lock()
		e.stats.Evaluations++
		e.mu.Unlock()
	}
}

// Wait blocks until all background passes started so far have completed.
func (e *Engine) Wait() { e.bg.Wait() }

// affectedExternalsLocked returns external dependents whose watched ranges
// intersect the changed cells or any recomputed formula cell.
func (e *Engine) affectedExternalsLocked(changed []CellID, dirty map[CellID]*formulaNode) []*external {
	if len(e.externals) == 0 {
		return nil
	}
	touched := make(map[CellID]struct{}, len(changed)+len(dirty))
	for _, id := range changed {
		id.Sheet = sheetKey(id.Sheet)
		touched[id] = struct{}{}
	}
	for id := range dirty {
		touched[id] = struct{}{}
	}
	var out []*external
	for _, ext := range e.externals {
		hit := false
		for id := range touched {
			for _, ref := range ext.refs {
				if sheetKey(ref.Sheet) == id.Sheet && ref.Range.Contains(id.Addr) {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			out = append(out, ext)
		}
	}
	return out
}
