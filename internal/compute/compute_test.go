package compute

import (
	"fmt"
	"testing"

	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

func newEngine(t *testing.T) (*Engine, *sheet.Book) {
	t.Helper()
	book := sheet.NewBook()
	book.AddSheet("Sheet1")
	book.AddSheet("Sheet2")
	return New(book), book
}

func addr(s string) sheet.Address { return sheet.MustParseAddress(s) }

func cellValue(t *testing.T, b *sheet.Book, sheetName, ref string) sheet.Value {
	t.Helper()
	sh, ok := b.Sheet(sheetName)
	if !ok {
		t.Fatalf("no sheet %s", sheetName)
	}
	return sh.Value(addr(ref))
}

func TestSetValueAndFormulaBasic(t *testing.T) {
	e, b := newEngine(t)
	e.SetValue("Sheet1", addr("A1"), sheet.Number(10))()
	e.SetValue("Sheet1", addr("A2"), sheet.Number(32))()
	wait, err := e.SetFormula("Sheet1", addr("B1"), "=A1+A2")
	if err != nil {
		t.Fatal(err)
	}
	wait()
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 42 {
		t.Errorf("B1 = %v", got)
	}
	// Changing a precedent updates the dependent.
	e.SetValue("Sheet1", addr("A1"), sheet.Number(100))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 132 {
		t.Errorf("B1 after change = %v", got)
	}
	if e.FormulaCount() != 1 {
		t.Errorf("FormulaCount = %d", e.FormulaCount())
	}
}

func TestFormulaChains(t *testing.T) {
	e, b := newEngine(t)
	e.SetValue("Sheet1", addr("A1"), sheet.Number(1))()
	mustFormula(t, e, "Sheet1", "B1", "=A1*2")
	mustFormula(t, e, "Sheet1", "C1", "=B1*2")
	mustFormula(t, e, "Sheet1", "D1", "=C1*2+B1")
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "D1"); got.Num != 10 {
		t.Errorf("D1 = %v", got)
	}
	// A single change at the root ripples through the whole chain.
	e.SetValue("Sheet1", addr("A1"), sheet.Number(5))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "D1"); got.Num != 50 {
		t.Errorf("D1 after ripple = %v", got)
	}
	if got := cellValue(t, b, "Sheet1", "C1"); got.Num != 20 {
		t.Errorf("C1 after ripple = %v", got)
	}
}

func mustFormula(t *testing.T, e *Engine, sheetName, ref, src string) {
	t.Helper()
	wait, err := e.SetFormula(sheetName, addr(ref), src)
	if err != nil {
		t.Fatalf("SetFormula(%s, %s): %v", ref, src, err)
	}
	wait()
}

func TestRangeFormulasAndCrossSheet(t *testing.T) {
	e, b := newEngine(t)
	for i := 1; i <= 20; i++ {
		e.SetValue("Sheet1", addr(fmt.Sprintf("A%d", i)), sheet.Number(float64(i)))()
	}
	e.SetValue("Sheet2", addr("A1"), sheet.Number(1000))()
	mustFormula(t, e, "Sheet1", "C1", "=SUM(A1:A20)")
	mustFormula(t, e, "Sheet1", "C2", "=SUM(A1:A10)+Sheet2!A1")
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "C1"); got.Num != 210 {
		t.Errorf("C1 = %v", got)
	}
	if got := cellValue(t, b, "Sheet1", "C2"); got.Num != 1055 {
		t.Errorf("C2 = %v", got)
	}
	// Changing a cell inside the range updates both; changing a cell on the
	// other sheet updates only the cross-sheet formula.
	e.SetValue("Sheet1", addr("A5"), sheet.Number(105))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "C1"); got.Num != 310 {
		t.Errorf("C1 after range change = %v", got)
	}
	e.SetValue("Sheet2", addr("A1"), sheet.Number(2000))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "C2"); got.Num != 2155 {
		t.Errorf("C2 after cross-sheet change = %v", got)
	}
}

func TestClearCellAndOverwriteFormula(t *testing.T) {
	e, b := newEngine(t)
	e.SetValue("Sheet1", addr("A1"), sheet.Number(2))()
	mustFormula(t, e, "Sheet1", "B1", "=A1*10")
	// Overwrite the formula with another formula.
	mustFormula(t, e, "Sheet1", "B1", "=A1*100")
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 200 {
		t.Errorf("B1 = %v", got)
	}
	if e.FormulaCount() != 1 {
		t.Errorf("FormulaCount after overwrite = %d", e.FormulaCount())
	}
	// Overwrite with a literal: the old dependency must be gone.
	e.SetValue("Sheet1", addr("B1"), sheet.Number(7))()
	e.SetValue("Sheet1", addr("A1"), sheet.Number(3))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 7 {
		t.Errorf("B1 should stay a literal: %v", got)
	}
	if e.FormulaCount() != 0 {
		t.Errorf("FormulaCount after literal overwrite = %d", e.FormulaCount())
	}
	// ClearCell removes content and dependencies.
	mustFormula(t, e, "Sheet1", "C1", "=A1")
	e.ClearCell("Sheet1", addr("C1"))()
	if e.FormulaCount() != 0 {
		t.Error("ClearCell should unregister the formula")
	}
	if got := cellValue(t, b, "Sheet1", "C1"); !got.IsEmpty() {
		t.Errorf("C1 should be empty: %v", got)
	}
}

func TestCircularReferenceDetection(t *testing.T) {
	e, b := newEngine(t)
	mustFormula(t, e, "Sheet1", "A1", "=B1+1")
	mustFormula(t, e, "Sheet1", "B1", "=A1+1")
	e.Wait()
	a := cellValue(t, b, "Sheet1", "A1")
	bv := cellValue(t, b, "Sheet1", "B1")
	if a.Err != ErrCircular.Err && bv.Err != ErrCircular.Err {
		t.Errorf("circular cells = %v, %v", a, bv)
	}
	// A formula depending on the cycle is also marked.
	mustFormula(t, e, "Sheet1", "C1", "=A1*2")
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "C1"); !got.IsError() {
		t.Errorf("dependent of cycle = %v", got)
	}
	// Breaking the cycle heals everything.
	e.SetValue("Sheet1", addr("B1"), sheet.Number(1))()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "A1"); got.Num != 2 {
		t.Errorf("A1 after breaking cycle = %v", got)
	}
	if got := cellValue(t, b, "Sheet1", "C1"); got.Num != 4 {
		t.Errorf("C1 after breaking cycle = %v", got)
	}
}

func TestDBFormulaRejectedAndUnknownSheet(t *testing.T) {
	e, _ := newEngine(t)
	if _, err := e.SetFormula("Sheet1", addr("A1"), `=DBSQL("SELECT 1")`); err == nil {
		t.Error("DBSQL should be rejected by the compute engine")
	}
	if _, err := e.SetFormula("NoSheet", addr("A1"), "=1+1"); err == nil {
		t.Error("unknown sheet should be rejected")
	}
	if _, err := e.SetFormula("Sheet1", addr("A1"), "=1+"); err == nil {
		t.Error("invalid formula should be rejected")
	}
	// SetValue/ClearCell on unknown sheets are no-ops.
	e.SetValue("NoSheet", addr("A1"), sheet.Number(1))()
	e.ClearCell("NoSheet", addr("A1"))()
}

func TestVisibleFirstPrioritization(t *testing.T) {
	e, b := newEngine(t)
	// One input cell, many dependent formulas; only a few are visible.
	e.SetValue("Sheet1", addr("A1"), sheet.Number(1))()
	const n = 300
	for i := 0; i < n; i++ {
		mustFormula(t, e, "Sheet1", fmt.Sprintf("B%d", i+1), "=A1*2")
	}
	e.Wait()
	visibleRange := sheet.MustParseRange("B1:B10")
	e.SetVisibleProvider(func() map[string]sheet.Range {
		return map[string]sheet.Range{"Sheet1": visibleRange}
	})
	before := e.Stats()
	wait := e.SetValue("Sheet1", addr("A1"), sheet.Number(3))
	// Before waiting for the background pass, every visible cell must
	// already be up to date.
	for i := 0; i < 10; i++ {
		if got := cellValue(t, b, "Sheet1", fmt.Sprintf("B%d", i+1)); got.Num != 6 {
			t.Fatalf("visible cell B%d not prioritised: %v", i+1, got)
		}
	}
	mid := e.Stats()
	if v := mid.VisibleFirst - before.VisibleFirst; v != 10 {
		t.Errorf("priority pass evaluated %d formulas, want 10", v)
	}
	wait()
	after := e.Stats()
	if total := after.Evaluations - before.Evaluations; total != n {
		t.Errorf("total evaluations = %d, want %d", total, n)
	}
	// After the background pass everything is consistent.
	for i := 0; i < n; i++ {
		if got := cellValue(t, b, "Sheet1", fmt.Sprintf("B%d", i+1)); got.Num != 6 {
			t.Fatalf("background cell B%d stale: %v", i+1, got)
		}
	}
	if after.BackgroundRuns == 0 {
		t.Error("expected a background run")
	}
}

func TestPriorityIncludesHiddenPrecedents(t *testing.T) {
	e, b := newEngine(t)
	e.SetValue("Sheet1", addr("A1"), sheet.Number(1))()
	// Hidden intermediate Z100 feeds visible B1.
	mustFormula(t, e, "Sheet1", "Z100", "=A1*10")
	mustFormula(t, e, "Sheet1", "B1", "=Z100+1")
	e.Wait()
	e.SetVisibleProvider(func() map[string]sheet.Range {
		return map[string]sheet.Range{"Sheet1": sheet.MustParseRange("A1:C10")}
	})
	_ = e.SetValue("Sheet1", addr("A1"), sheet.Number(2))
	// Without waiting: the visible B1 must be correct, which requires the
	// off-screen precedent Z100 to have been computed in the priority pass.
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 21 {
		t.Errorf("visible dependent of hidden precedent = %v", got)
	}
	e.Wait()
}

func TestRecalcAll(t *testing.T) {
	e, b := newEngine(t)
	e.SetValue("Sheet1", addr("A1"), sheet.Number(4))()
	mustFormula(t, e, "Sheet1", "B1", "=A1*A1")
	mustFormula(t, e, "Sheet1", "C1", "=B1+1")
	// Corrupt the stored values to prove RecalcAll recomputes them.
	sh, _ := b.Sheet("Sheet1")
	sh.SetComputedValue(addr("B1"), sheet.Number(-1))
	sh.SetComputedValue(addr("C1"), sheet.Number(-1))
	e.RecalcAll()
	if cellValue(t, b, "Sheet1", "B1").Num != 16 || cellValue(t, b, "Sheet1", "C1").Num != 17 {
		t.Error("RecalcAll did not restore values")
	}
}

func TestExternalDependents(t *testing.T) {
	e, _ := newEngine(t)
	e.SetValue("Sheet1", addr("B1"), sheet.Number(1))()
	fired := 0
	e.RegisterExternal("dbsql-1", []formula.Reference{
		{Sheet: "Sheet1", Range: sheet.MustParseRange("B1:B2")},
	}, "Sheet1", func() { fired++ })
	e.SetValue("Sheet1", addr("B1"), sheet.Number(2))()
	e.Wait()
	if fired != 1 {
		t.Errorf("external fired %d times, want 1", fired)
	}
	// Changes outside the watched range do not fire.
	e.SetValue("Sheet1", addr("Z9"), sheet.Number(1))()
	e.Wait()
	if fired != 1 {
		t.Errorf("external fired on unrelated change")
	}
	// A formula recomputation inside the watched range fires too.
	mustFormula(t, e, "Sheet1", "B2", "=Z9*2")
	e.Wait()
	fired = 0
	e.SetValue("Sheet1", addr("Z9"), sheet.Number(5))()
	e.Wait()
	if fired != 1 {
		t.Errorf("external fired %d times after dependent formula change, want 1", fired)
	}
	e.UnregisterExternal("dbsql-1")
	e.SetValue("Sheet1", addr("B1"), sheet.Number(3))()
	e.Wait()
	if fired != 1 {
		t.Error("unregistered external should not fire")
	}
}

func TestNotifyChanged(t *testing.T) {
	e, b := newEngine(t)
	sh, _ := b.Sheet("Sheet1")
	// Simulate a DBTABLE refresh writing values directly into the sheet.
	sh.SetValue(addr("A1"), sheet.Number(10))
	sh.SetValue(addr("A2"), sheet.Number(20))
	mustFormula(t, e, "Sheet1", "B1", "=SUM(A1:A2)")
	e.Wait()
	sh.SetValue(addr("A2"), sheet.Number(30))
	e.NotifyChanged(CellID{Sheet: "Sheet1", Addr: addr("A2")})()
	e.Wait()
	if got := cellValue(t, b, "Sheet1", "B1"); got.Num != 40 {
		t.Errorf("B1 after NotifyChanged = %v", got)
	}
}

func TestManyIndependentFormulasStatsAndConsistency(t *testing.T) {
	e, b := newEngine(t)
	const n = 500
	for i := 0; i < n; i++ {
		e.SetValue("Sheet1", sheet.Addr(i, 0), sheet.Number(float64(i)))()
	}
	for i := 0; i < n; i++ {
		mustFormula(t, e, "Sheet1", sheet.Addr(i, 1).String(), fmt.Sprintf("=A%d*2", i+1))
	}
	e.Wait()
	for i := 0; i < n; i += 47 {
		if got := cellValue(t, b, "Sheet1", sheet.Addr(i, 1).String()); got.Num != float64(i*2) {
			t.Fatalf("row %d = %v", i, got)
		}
	}
	if e.Stats().Evaluations < uint64(n) {
		t.Error("expected at least one evaluation per formula")
	}
}
