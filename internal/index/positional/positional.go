// Package positional implements the paper's positional index: an
// order-statistic balanced tree that maps spreadsheet positions (0-based row
// offsets within a displayed table or sheet region) to stored tuples.
//
// Unlike a key index, a positional index must stay correct under row
// insertion and deletion, which shift the positions of everything below the
// edit point. A dense array or a key index on an explicit "row number"
// attribute would need O(n) renumbering per insert; the positional index does
// every operation — lookup by position, window scan, insert, delete, and
// reverse lookup (position of a given tuple) — in O(log n).
package positional

import (
	"fmt"
)

// Index is an order-statistic treap storing uint64 payloads (typically row
// ids) in a user-controlled sequence. The zero value is not usable; call New.
// Index is not safe for concurrent mutation; callers serialise access.
type Index struct {
	root    *node
	nodes   map[uint64]*node // reverse map: payload -> node (payloads unique)
	rngSeed uint64
}

type node struct {
	payload  uint64
	priority uint64
	size     int
	left     *node
	right    *node
	parent   *node
}

// New creates an empty positional index.
func New() *Index {
	return &Index{nodes: make(map[uint64]*node), rngSeed: 0x9E3779B97F4A7C15}
}

// Len returns the number of entries.
func (ix *Index) Len() int { return size(ix.root) }

// nextPriority produces deterministic pseudo-random priorities (splitmix64)
// so tree shape is reproducible across runs.
func (ix *Index) nextPriority() uint64 {
	ix.rngSeed += 0x9E3779B97F4A7C15
	z := ix.rngSeed
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
	if n.left != nil {
		n.left.parent = n
	}
	if n.right != nil {
		n.right.parent = n
	}
}

// merge joins two treaps where every position in a precedes every position
// in b.
func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority > b.priority:
		a.right = merge(a.right, b)
		a.update()
		return a
	default:
		b.left = merge(a, b.left)
		b.update()
		return b
	}
}

// split divides a treap into positions [0,k) and [k,n).
func split(n *node, k int) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	if size(n.left) >= k {
		l, r := split(n.left, k)
		n.left = r
		n.update()
		if l != nil {
			l.parent = nil
		}
		return l, n
	}
	l, r := split(n.right, k-size(n.left)-1)
	n.right = l
	n.update()
	if r != nil {
		r.parent = nil
	}
	return n, r
}

// InsertAt inserts payload so that it occupies position pos, shifting later
// entries down by one. pos is clamped to [0, Len]. Each payload may appear at
// most once; inserting a payload already present returns an error.
func (ix *Index) InsertAt(pos int, payload uint64) error {
	if _, dup := ix.nodes[payload]; dup {
		return fmt.Errorf("positional: payload %d already present", payload)
	}
	if pos < 0 {
		pos = 0
	}
	if pos > ix.Len() {
		pos = ix.Len()
	}
	n := &node{payload: payload, priority: ix.nextPriority(), size: 1}
	ix.nodes[payload] = n
	l, r := split(ix.root, pos)
	ix.root = merge(merge(l, n), r)
	if ix.root != nil {
		ix.root.parent = nil
	}
	return nil
}

// Append inserts payload at the end of the sequence.
func (ix *Index) Append(payload uint64) error {
	return ix.InsertAt(ix.Len(), payload)
}

// DeleteAt removes the entry at pos, shifting later entries up by one, and
// returns the removed payload.
func (ix *Index) DeleteAt(pos int) (uint64, bool) {
	if pos < 0 || pos >= ix.Len() {
		return 0, false
	}
	l, rest := split(ix.root, pos)
	mid, r := split(rest, 1)
	payload := mid.payload
	delete(ix.nodes, payload)
	ix.root = merge(l, r)
	if ix.root != nil {
		ix.root.parent = nil
	}
	return payload, true
}

// Get returns the payload at pos.
func (ix *Index) Get(pos int) (uint64, bool) {
	n := ix.root
	if pos < 0 || pos >= size(n) {
		return 0, false
	}
	for n != nil {
		ls := size(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			return n.payload, true
		default:
			pos -= ls + 1
			n = n.right
		}
	}
	return 0, false
}

// Replace swaps the payload stored at pos for a new one (the position of the
// entry is unchanged). It fails if the new payload is already present under a
// different position.
func (ix *Index) Replace(pos int, payload uint64) error {
	n := ix.nodeAt(pos)
	if n == nil {
		return fmt.Errorf("positional: position %d out of range", pos)
	}
	if n.payload == payload {
		return nil
	}
	if _, dup := ix.nodes[payload]; dup {
		return fmt.Errorf("positional: payload %d already present", payload)
	}
	delete(ix.nodes, n.payload)
	n.payload = payload
	ix.nodes[payload] = n
	return nil
}

func (ix *Index) nodeAt(pos int) *node {
	n := ix.root
	if pos < 0 || pos >= size(n) {
		return nil
	}
	for n != nil {
		ls := size(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			return n
		default:
			pos -= ls + 1
			n = n.right
		}
	}
	return nil
}

// PositionOf returns the current position of the given payload, the reverse
// lookup used when a database-side change must be reflected at the right
// place on the sheet.
func (ix *Index) PositionOf(payload uint64) (int, bool) {
	n, ok := ix.nodes[payload]
	if !ok {
		return 0, false
	}
	pos := size(n.left)
	for n.parent != nil {
		if n.parent.right == n {
			pos += size(n.parent.left) + 1
		}
		n = n.parent
	}
	return pos, true
}

// Remove deletes the entry holding payload (wherever it is) and returns its
// former position.
func (ix *Index) Remove(payload uint64) (int, bool) {
	pos, ok := ix.PositionOf(payload)
	if !ok {
		return 0, false
	}
	ix.DeleteAt(pos)
	return pos, true
}

// Scan calls fn for count entries starting at position pos (fewer if the
// sequence ends first), in positional order. Iteration stops early if fn
// returns false. This is the window-fetch primitive: retrieving the visible
// pane is a single O(log n + window) scan.
func (ix *Index) Scan(pos, count int, fn func(pos int, payload uint64) bool) {
	if pos < 0 {
		count += pos
		pos = 0
	}
	end := pos + count
	if end > ix.Len() {
		end = ix.Len()
	}
	i := pos
	var walk func(n *node, offset int) bool
	walk = func(n *node, offset int) bool {
		if n == nil || i >= end {
			return true
		}
		ls := size(n.left)
		nodePos := offset + ls
		if i < nodePos {
			if !walk(n.left, offset) {
				return false
			}
		}
		if i >= end {
			return true
		}
		if nodePos >= i && nodePos < end {
			if !fn(nodePos, n.payload) {
				return false
			}
			i = nodePos + 1
		}
		if i < end && nodePos < end {
			return walk(n.right, nodePos+1)
		}
		return true
	}
	walk(ix.root, 0)
}

// All returns every payload in positional order. Intended for tests and
// small sequences.
func (ix *Index) All() []uint64 {
	out := make([]uint64, 0, ix.Len())
	ix.Scan(0, ix.Len(), func(_ int, p uint64) bool {
		out = append(out, p)
		return true
	})
	return out
}

// BulkLoad builds the index from an ordered payload slice, replacing any
// existing contents. Payloads must be unique.
func (ix *Index) BulkLoad(payloads []uint64) error {
	ix.root = nil
	ix.nodes = make(map[uint64]*node, len(payloads))
	ix.root = ix.build(payloads)
	if ix.root != nil {
		ix.root.parent = nil
	}
	if len(ix.nodes) != len(payloads) {
		return fmt.Errorf("positional: duplicate payloads in bulk load")
	}
	return nil
}

// build constructs a balanced treap from ordered payloads. Priorities are
// still assigned so later mutations keep the tree balanced in expectation.
func (ix *Index) build(payloads []uint64) *node {
	if len(payloads) == 0 {
		return nil
	}
	// Build by repeated merge of singleton nodes in order; to stay O(n log n)
	// worst case we build a balanced structure directly and then fix
	// priorities by a heapify-like pass. Simpler: recursive midpoint build,
	// assigning each node the max priority of its subtree to preserve the
	// heap property.
	mid := len(payloads) / 2
	n := &node{payload: payloads[mid], priority: ix.nextPriority(), size: 1}
	ix.nodes[payloads[mid]] = n
	n.left = ix.build(payloads[:mid])
	n.right = ix.build(payloads[mid+1:])
	// Restore the treap heap property locally: parent priority must be >=
	// children. Taking the max is sufficient because children were built
	// the same way.
	if n.left != nil && n.left.priority > n.priority {
		n.priority = n.left.priority
	}
	if n.right != nil && n.right.priority > n.priority {
		n.priority = n.right.priority
	}
	n.update()
	return n
}
