package positional

import (
	"math/rand"
	"testing"
)

func TestEmptyIndex(t *testing.T) {
	ix := New()
	if ix.Len() != 0 {
		t.Fatal("new index should be empty")
	}
	if _, ok := ix.Get(0); ok {
		t.Fatal("Get on empty should miss")
	}
	if _, ok := ix.DeleteAt(0); ok {
		t.Fatal("DeleteAt on empty should fail")
	}
	if _, ok := ix.PositionOf(7); ok {
		t.Fatal("PositionOf on empty should miss")
	}
	if got := ix.All(); len(got) != 0 {
		t.Fatal("All on empty should be empty")
	}
}

func TestAppendAndGet(t *testing.T) {
	ix := New()
	for i := uint64(0); i < 100; i++ {
		if err := ix.Append(i + 1000); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := ix.Get(i)
		if !ok || v != uint64(i+1000) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := ix.Get(100); ok {
		t.Error("Get past end should miss")
	}
	if _, ok := ix.Get(-1); ok {
		t.Error("Get(-1) should miss")
	}
}

func TestInsertAtShifts(t *testing.T) {
	ix := New()
	// 10, 20, 30
	for _, v := range []uint64{10, 20, 30} {
		_ = ix.Append(v)
	}
	// Insert 15 at position 1 -> 10, 15, 20, 30
	if err := ix.InsertAt(1, 15); err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 15, 20, 30}
	got := ix.All()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All = %v, want %v", got, want)
		}
	}
	// Positions clamp.
	_ = ix.InsertAt(-5, 1)
	_ = ix.InsertAt(1000, 99)
	if v, _ := ix.Get(0); v != 1 {
		t.Error("clamped insert at front wrong")
	}
	if v, _ := ix.Get(ix.Len() - 1); v != 99 {
		t.Error("clamped insert at end wrong")
	}
	// Duplicate payloads rejected.
	if err := ix.InsertAt(0, 15); err == nil {
		t.Error("duplicate payload should be rejected")
	}
}

func TestDeleteAtShifts(t *testing.T) {
	ix := New()
	for i := uint64(0); i < 10; i++ {
		_ = ix.Append(i)
	}
	v, ok := ix.DeleteAt(3)
	if !ok || v != 3 {
		t.Fatalf("DeleteAt(3) = %d,%v", v, ok)
	}
	if ix.Len() != 9 {
		t.Fatal("Len after delete wrong")
	}
	if got, _ := ix.Get(3); got != 4 {
		t.Errorf("Get(3) after delete = %d, want 4", got)
	}
	if _, ok := ix.DeleteAt(99); ok {
		t.Error("DeleteAt out of range should fail")
	}
	// The deleted payload can be re-inserted.
	if err := ix.Append(3); err != nil {
		t.Errorf("re-insert after delete: %v", err)
	}
}

func TestPositionOfAndRemove(t *testing.T) {
	ix := New()
	for i := uint64(0); i < 1000; i++ {
		_ = ix.Append(i * 7)
	}
	for i := 0; i < 1000; i += 37 {
		pos, ok := ix.PositionOf(uint64(i * 7))
		if !ok || pos != i {
			t.Fatalf("PositionOf(%d) = %d,%v want %d", i*7, pos, ok, i)
		}
	}
	// After inserting at the front, all positions shift by one.
	_ = ix.InsertAt(0, 99999)
	pos, ok := ix.PositionOf(7 * 500)
	if !ok || pos != 501 {
		t.Fatalf("PositionOf after front insert = %d,%v", pos, ok)
	}
	// Remove by payload.
	gone, ok := ix.Remove(99999)
	if !ok || gone != 0 {
		t.Fatalf("Remove = %d,%v", gone, ok)
	}
	if _, ok := ix.Remove(99999); ok {
		t.Error("Remove of missing payload should fail")
	}
	if pos, _ := ix.PositionOf(7 * 500); pos != 500 {
		t.Error("positions should shift back after Remove")
	}
}

func TestReplace(t *testing.T) {
	ix := New()
	for i := uint64(0); i < 5; i++ {
		_ = ix.Append(i)
	}
	if err := ix.Replace(2, 100); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Get(2); v != 100 {
		t.Error("Replace did not change payload")
	}
	if pos, ok := ix.PositionOf(100); !ok || pos != 2 {
		t.Error("reverse map not updated by Replace")
	}
	if _, ok := ix.PositionOf(2); ok {
		t.Error("old payload should be gone after Replace")
	}
	if err := ix.Replace(0, 100); err == nil {
		t.Error("Replace to duplicate payload should fail")
	}
	if err := ix.Replace(2, 100); err != nil {
		t.Error("Replace with same payload should be a no-op")
	}
	if err := ix.Replace(99, 1); err == nil {
		t.Error("Replace out of range should fail")
	}
}

func TestScanWindow(t *testing.T) {
	ix := New()
	for i := uint64(0); i < 1000; i++ {
		_ = ix.Append(i)
	}
	var got []uint64
	var positions []int
	ix.Scan(100, 50, func(pos int, p uint64) bool {
		positions = append(positions, pos)
		got = append(got, p)
		return true
	})
	if len(got) != 50 {
		t.Fatalf("Scan returned %d entries", len(got))
	}
	for i := range got {
		if got[i] != uint64(100+i) || positions[i] != 100+i {
			t.Fatalf("Scan[%d] = pos %d payload %d", i, positions[i], got[i])
		}
	}
	// Scan past the end truncates.
	n := 0
	ix.Scan(990, 50, func(int, uint64) bool { n++; return true })
	if n != 10 {
		t.Errorf("Scan past end visited %d, want 10", n)
	}
	// Negative start clamps.
	n = 0
	ix.Scan(-5, 10, func(int, uint64) bool { n++; return true })
	if n != 5 {
		t.Errorf("Scan negative start visited %d, want 5", n)
	}
	// Early stop.
	n = 0
	ix.Scan(0, 100, func(int, uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestBulkLoad(t *testing.T) {
	ix := New()
	payloads := make([]uint64, 10000)
	for i := range payloads {
		payloads[i] = uint64(i) + 5
	}
	if err := ix.BulkLoad(payloads); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(payloads) {
		t.Fatalf("Len = %d", ix.Len())
	}
	for _, i := range []int{0, 1, 5000, 9999} {
		if v, ok := ix.Get(i); !ok || v != payloads[i] {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
		if pos, ok := ix.PositionOf(payloads[i]); !ok || pos != i {
			t.Fatalf("PositionOf(%d) = %d,%v", payloads[i], pos, ok)
		}
	}
	// Mutations after bulk load still work.
	_ = ix.InsertAt(5000, 1<<40)
	if v, _ := ix.Get(5000); v != 1<<40 {
		t.Error("insert after bulk load failed")
	}
	if v, _ := ix.Get(5001); v != payloads[5000] {
		t.Error("shift after bulk load failed")
	}
	// Duplicates rejected.
	if err := ix.BulkLoad([]uint64{1, 2, 1}); err == nil {
		t.Error("BulkLoad with duplicates should fail")
	}
	// Bulk load replaces prior contents.
	_ = ix.BulkLoad([]uint64{42})
	if ix.Len() != 1 {
		t.Error("BulkLoad should replace contents")
	}
}

// TestAgainstReferenceSlice drives the index with random operations mirrored
// against a plain slice, the executable specification of positional
// semantics.
func TestAgainstReferenceSlice(t *testing.T) {
	ix := New()
	var ref []uint64
	rng := rand.New(rand.NewSource(99))
	next := uint64(1)
	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert at random position
			pos := 0
			if len(ref) > 0 {
				pos = rng.Intn(len(ref) + 1)
			}
			payload := next
			next++
			if err := ix.InsertAt(pos, payload); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, 0)
			copy(ref[pos+1:], ref[pos:])
			ref[pos] = payload
		case r < 6 && len(ref) > 0: // delete at random position
			pos := rng.Intn(len(ref))
			got, ok := ix.DeleteAt(pos)
			if !ok || got != ref[pos] {
				t.Fatalf("op %d: DeleteAt(%d) = %d,%v want %d", op, pos, got, ok, ref[pos])
			}
			ref = append(ref[:pos], ref[pos+1:]...)
		case r < 8 && len(ref) > 0: // point lookup
			pos := rng.Intn(len(ref))
			got, ok := ix.Get(pos)
			if !ok || got != ref[pos] {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d", op, pos, got, ok, ref[pos])
			}
		case len(ref) > 0: // reverse lookup
			pos := rng.Intn(len(ref))
			gotPos, ok := ix.PositionOf(ref[pos])
			if !ok || gotPos != pos {
				t.Fatalf("op %d: PositionOf(%d) = %d,%v want %d", op, ref[pos], gotPos, ok, pos)
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref = %d", op, ix.Len(), len(ref))
		}
	}
	// Final full comparison.
	got := ix.All()
	if len(got) != len(ref) {
		t.Fatalf("final length mismatch")
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("final content mismatch at %d", i)
		}
	}
}

func TestScanMatchesReferenceWindows(t *testing.T) {
	ix := New()
	var ref []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		pos := 0
		if len(ref) > 0 {
			pos = rng.Intn(len(ref) + 1)
		}
		_ = ix.InsertAt(pos, uint64(i+1))
		ref = append(ref, 0)
		copy(ref[pos+1:], ref[pos:])
		ref[pos] = uint64(i + 1)
	}
	for trial := 0; trial < 100; trial++ {
		start := rng.Intn(len(ref))
		count := rng.Intn(200)
		var got []uint64
		ix.Scan(start, count, func(_ int, p uint64) bool { got = append(got, p); return true })
		end := start + count
		if end > len(ref) {
			end = len(ref)
		}
		want := ref[start:end]
		if len(got) != len(want) {
			t.Fatalf("window [%d,%d): got %d entries want %d", start, end, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window [%d,%d) mismatch at %d", start, end, i)
			}
		}
	}
}
