// Package grid implements the two-dimensional index used by the interface
// storage manager. The sheet plane is partitioned into fixed-size tiles
// (proximity groups); the index maps tile coordinates to an opaque uint64
// handle — in practice the page id of the data block holding the tile's
// cells — and answers rectangle queries with the set of tiles that overlap a
// requested range.
package grid

import "sort"

// TileKey identifies a tile by its coordinates in tile space.
type TileKey struct {
	TileRow int
	TileCol int
}

// Index is a 2-D tile directory. It is not safe for concurrent mutation;
// the owning cell store serialises access.
type Index struct {
	tileRows int
	tileCols int
	tiles    map[TileKey]uint64
}

// New creates an index with the given tile dimensions (rows × columns of
// cells per tile). Dimensions are clamped to at least 1.
func New(tileRows, tileCols int) *Index {
	if tileRows < 1 {
		tileRows = 1
	}
	if tileCols < 1 {
		tileCols = 1
	}
	return &Index{tileRows: tileRows, tileCols: tileCols, tiles: make(map[TileKey]uint64)}
}

// TileRows returns the number of cell rows per tile.
func (ix *Index) TileRows() int { return ix.tileRows }

// TileCols returns the number of cell columns per tile.
func (ix *Index) TileCols() int { return ix.tileCols }

// Len returns the number of registered tiles.
func (ix *Index) Len() int { return len(ix.tiles) }

// TileFor returns the key of the tile containing the cell (row, col).
// Negative coordinates use floor division so every cell maps to exactly one
// tile.
func (ix *Index) TileFor(row, col int) TileKey {
	return TileKey{TileRow: floorDiv(row, ix.tileRows), TileCol: floorDiv(col, ix.tileCols)}
}

// CellOrigin returns the sheet coordinates of the tile's top-left cell.
func (ix *Index) CellOrigin(k TileKey) (row, col int) {
	return k.TileRow * ix.tileRows, k.TileCol * ix.tileCols
}

// Get returns the handle registered for a tile.
func (ix *Index) Get(k TileKey) (uint64, bool) {
	v, ok := ix.tiles[k]
	return v, ok
}

// Put registers (or replaces) the handle for a tile.
func (ix *Index) Put(k TileKey, handle uint64) { ix.tiles[k] = handle }

// Delete removes a tile registration.
func (ix *Index) Delete(k TileKey) { delete(ix.tiles, k) }

// TilesInRect returns the keys of registered tiles that overlap the cell
// rectangle [r1,c1]..[r2,c2] (inclusive), in row-major tile order. Only
// tiles actually present in the index are returned, so sparse sheets pay for
// populated tiles only.
func (ix *Index) TilesInRect(r1, c1, r2, c2 int) []TileKey {
	if r2 < r1 {
		r1, r2 = r2, r1
	}
	if c2 < c1 {
		c1, c2 = c2, c1
	}
	lo := ix.TileFor(r1, c1)
	hi := ix.TileFor(r2, c2)
	spanned := (hi.TileRow - lo.TileRow + 1) * (hi.TileCol - lo.TileCol + 1)
	var out []TileKey
	if spanned <= len(ix.tiles) {
		// Probe each tile coordinate in the rectangle.
		for tr := lo.TileRow; tr <= hi.TileRow; tr++ {
			for tc := lo.TileCol; tc <= hi.TileCol; tc++ {
				k := TileKey{tr, tc}
				if _, ok := ix.tiles[k]; ok {
					out = append(out, k)
				}
			}
		}
		return out
	}
	// Sparse rectangle much larger than the populated tile set: scan tiles.
	for k := range ix.tiles {
		if k.TileRow >= lo.TileRow && k.TileRow <= hi.TileRow &&
			k.TileCol >= lo.TileCol && k.TileCol <= hi.TileCol {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TileRow != out[j].TileRow {
			return out[i].TileRow < out[j].TileRow
		}
		return out[i].TileCol < out[j].TileCol
	})
	return out
}

// All returns every registered tile key in row-major order.
func (ix *Index) All() []TileKey {
	out := make([]TileKey, 0, len(ix.tiles))
	for k := range ix.tiles {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TileRow != out[j].TileRow {
			return out[i].TileRow < out[j].TileRow
		}
		return out[i].TileCol < out[j].TileCol
	})
	return out
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
