package grid

import (
	"testing"
	"testing/quick"
)

func TestTileForAndOrigin(t *testing.T) {
	ix := New(32, 8)
	cases := []struct {
		row, col int
		want     TileKey
	}{
		{0, 0, TileKey{0, 0}},
		{31, 7, TileKey{0, 0}},
		{32, 8, TileKey{1, 1}},
		{63, 15, TileKey{1, 1}},
		{100, 3, TileKey{3, 0}},
		{-1, -1, TileKey{-1, -1}},
	}
	for _, c := range cases {
		if got := ix.TileFor(c.row, c.col); got != c.want {
			t.Errorf("TileFor(%d,%d) = %v, want %v", c.row, c.col, got, c.want)
		}
	}
	r, c := ix.CellOrigin(TileKey{2, 3})
	if r != 64 || c != 24 {
		t.Errorf("CellOrigin = %d,%d", r, c)
	}
	if ix.TileRows() != 32 || ix.TileCols() != 8 {
		t.Error("dimensions wrong")
	}
}

func TestClampedDimensions(t *testing.T) {
	ix := New(0, -5)
	if ix.TileRows() != 1 || ix.TileCols() != 1 {
		t.Error("dimensions should clamp to 1")
	}
}

func TestPutGetDelete(t *testing.T) {
	ix := New(16, 4)
	k := TileKey{1, 2}
	if _, ok := ix.Get(k); ok {
		t.Fatal("missing tile should not be found")
	}
	ix.Put(k, 77)
	if v, ok := ix.Get(k); !ok || v != 77 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	ix.Put(k, 78)
	if v, _ := ix.Get(k); v != 78 {
		t.Error("Put should replace")
	}
	if ix.Len() != 1 {
		t.Error("Len wrong")
	}
	ix.Delete(k)
	if _, ok := ix.Get(k); ok || ix.Len() != 0 {
		t.Error("Delete failed")
	}
}

func TestTilesInRect(t *testing.T) {
	ix := New(10, 10)
	// Register a 5x5 grid of tiles covering cells 0..49 in both axes.
	for tr := 0; tr < 5; tr++ {
		for tc := 0; tc < 5; tc++ {
			ix.Put(TileKey{tr, tc}, uint64(tr*10+tc))
		}
	}
	// A window covering cells rows 15..25, cols 5..15 overlaps tiles
	// (1..2, 0..1).
	got := ix.TilesInRect(15, 5, 25, 15)
	if len(got) != 4 {
		t.Fatalf("TilesInRect returned %d tiles: %v", len(got), got)
	}
	want := []TileKey{{1, 0}, {1, 1}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tile %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Reversed corners normalise.
	got2 := ix.TilesInRect(25, 15, 15, 5)
	if len(got2) != 4 {
		t.Error("reversed rect should normalise")
	}
	// Rectangle outside the populated area.
	if got := ix.TilesInRect(1000, 1000, 1010, 1010); len(got) != 0 {
		t.Errorf("out-of-area rect returned %v", got)
	}
	// Huge rectangle takes the scan path and still returns everything in
	// row-major order.
	all := ix.TilesInRect(-1_000_000, -1_000_000, 1_000_000, 1_000_000)
	if len(all) != 25 {
		t.Fatalf("huge rect returned %d tiles", len(all))
	}
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if prev.TileRow > cur.TileRow || (prev.TileRow == cur.TileRow && prev.TileCol >= cur.TileCol) {
			t.Fatal("scan path not in row-major order")
		}
	}
}

func TestAllOrdered(t *testing.T) {
	ix := New(4, 4)
	ix.Put(TileKey{2, 0}, 1)
	ix.Put(TileKey{0, 1}, 2)
	ix.Put(TileKey{0, 0}, 3)
	all := ix.All()
	want := []TileKey{{0, 0}, {0, 1}, {2, 0}}
	if len(all) != 3 {
		t.Fatalf("All = %v", all)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("All[%d] = %v, want %v", i, all[i], want[i])
		}
	}
}

func TestEveryCellMapsToExactlyOneTileProperty(t *testing.T) {
	ix := New(32, 8)
	f := func(row, col int16) bool {
		k := ix.TileFor(int(row), int(col))
		or, oc := ix.CellOrigin(k)
		return int(row) >= or && int(row) < or+32 && int(col) >= oc && int(col) < oc+8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTilesInRectContainsTileOfEveryCellProperty(t *testing.T) {
	ix := New(7, 3)
	// Populate a region of tiles.
	for tr := -3; tr < 10; tr++ {
		for tc := -3; tc < 10; tc++ {
			ix.Put(TileKey{tr, tc}, 1)
		}
	}
	f := func(r1, c1 int8, dr, dc uint8) bool {
		r2 := int(r1) + int(dr)%20
		c2 := int(c1) + int(dc)%20
		tiles := ix.TilesInRect(int(r1), int(c1), r2, c2)
		set := make(map[TileKey]bool, len(tiles))
		for _, k := range tiles {
			set[k] = true
		}
		// Every cell in the rect whose tile is registered must have its
		// tile in the answer.
		for row := int(r1); row <= r2; row++ {
			for col := int(c1); col <= c2; col++ {
				k := ix.TileFor(row, col)
				if _, registered := ix.Get(k); registered && !set[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
