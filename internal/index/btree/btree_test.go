package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree should be empty")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree should miss")
	}
	if tr.Delete([]byte("x")) {
		t.Fatal("Delete on empty tree should return false")
	}
	count := 0
	tr.All(func([]byte, uint64) bool { count++; return true })
	if count != 0 {
		t.Fatal("All on empty tree should not call fn")
	}
}

func TestSetGetReplace(t *testing.T) {
	tr := New()
	tr.Set([]byte("a"), 1)
	tr.Set([]byte("b"), 2)
	tr.Set([]byte("a"), 10)
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2 (replace must not grow)", tr.Len())
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 10 {
		t.Errorf("Get(a) = %d,%v", v, ok)
	}
	if v, ok := tr.Get([]byte("b")); !ok || v != 2 {
		t.Errorf("Get(b) = %d,%v", v, ok)
	}
}

func TestKeyIsolation(t *testing.T) {
	tr := New()
	k := []byte("key")
	tr.Set(k, 1)
	k[0] = 'X' // mutating the caller's slice must not corrupt the tree
	if _, ok := tr.Get([]byte("key")); !ok {
		t.Error("tree should have copied the key")
	}
}

func TestLargeInsertAndScanOrder(t *testing.T) {
	tr := New()
	const n = 10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(EncodeUint64(uint64(i)), uint64(i*2))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	// Every key retrievable.
	for i := 0; i < n; i += 97 {
		v, ok := tr.Get(EncodeUint64(uint64(i)))
		if !ok || v != uint64(i*2) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Full scan yields sorted order.
	prev := []byte(nil)
	count := 0
	tr.All(func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order at %d", count)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(EncodeUint64(uint64(i)), uint64(i))
	}
	var got []uint64
	tr.Scan(EncodeUint64(10), EncodeUint64(20), func(_ []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("Scan[10,20) = %v", got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, func([]byte, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Open-ended lower bound.
	got = got[:0]
	tr.Scan(nil, EncodeUint64(3), func(_ []byte, v uint64) bool { got = append(got, v); return true })
	if len(got) != 3 {
		t.Errorf("Scan[nil,3) = %v", got)
	}
	// Open-ended upper bound.
	got = got[:0]
	tr.Scan(EncodeUint64(97), nil, func(_ []byte, v uint64) bool { got = append(got, v); return true })
	if len(got) != 3 {
		t.Errorf("Scan[97,nil) = %v", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(EncodeUint64(uint64(i)), uint64(i))
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(EncodeUint64(uint64(i))) {
			t.Fatalf("Delete(%d) returned false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(EncodeUint64(uint64(i)))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence wrong after delete", i)
		}
	}
	if tr.Delete(EncodeUint64(0)) {
		t.Error("double delete should return false")
	}
}

func TestTreeAgainstMapProperty(t *testing.T) {
	// Randomised operations mirrored against a Go map must always agree.
	tr := New()
	ref := make(map[string]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		key := EncodeUint64(uint64(rng.Intn(3000)))
		switch rng.Intn(3) {
		case 0, 1:
			v := uint64(rng.Intn(1e6))
			tr.Set(key, v)
			ref[string(key)] = v
		case 2:
			got := tr.Delete(key)
			_, want := ref[string(key)]
			if got != want {
				t.Fatalf("Delete mismatch at op %d", i)
			}
			delete(ref, string(key))
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, map = %d", tr.Len(), len(ref))
	}
	for k, want := range ref {
		got, ok := tr.Get([]byte(k))
		if !ok || got != want {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, want)
		}
	}
	// Scan order matches sorted map keys.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.All(func(k []byte, v uint64) bool {
		if string(k) != keys[i] || v != ref[keys[i]] {
			t.Fatalf("scan mismatch at %d", i)
		}
		i++
		return true
	})
}

func TestEncodeUint64Order(t *testing.T) {
	f := func(a, b uint64) bool {
		cmp := bytes.Compare(EncodeUint64(a), EncodeUint64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeInt64Order(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := bytes.Compare(EncodeInt64(a), EncodeInt64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodeInt64(EncodeInt64(-12345)) != -12345 {
		t.Error("int64 round trip failed")
	}
}

func TestEncodeFloat64Order(t *testing.T) {
	vals := []float64{-1e300, -42.5, -1, -0.001, 0, 0.001, 1, 42.5, 1e300}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			cmp := bytes.Compare(EncodeFloat64(vals[i]), EncodeFloat64(vals[j]))
			want := 0
			if vals[i] < vals[j] {
				want = -1
			} else if vals[i] > vals[j] {
				want = 1
			}
			if (cmp < 0) != (want < 0) || (cmp > 0) != (want > 0) {
				t.Errorf("order of %v vs %v wrong", vals[i], vals[j])
			}
		}
	}
	f := func(x float64) bool { return DecodeFloat64(EncodeFloat64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeStringOrderAndRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		cmp := bytes.Compare(EncodeString(a), EncodeString(b))
		want := bytes.Compare([]byte(a), []byte(b))
		// The encoding must preserve order exactly for strings without
		// embedded NULs; with NULs it still round-trips (checked below).
		if !bytes.ContainsRune([]byte(a), 0) && !bytes.ContainsRune([]byte(b), 0) {
			return (cmp < 0) == (want < 0) && (cmp > 0) == (want > 0)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	rt := func(s string) bool {
		dec, n := DecodeString(EncodeString(s))
		return dec == s && n == len(EncodeString(s))
	}
	if err := quick.Check(rt, nil); err != nil {
		t.Error(err)
	}
	// Embedded NUL round trip.
	s := "a\x00b"
	dec, _ := DecodeString(EncodeString(s))
	if dec != s {
		t.Errorf("NUL round trip = %q", dec)
	}
}

func TestCompositeKeys(t *testing.T) {
	tr := New()
	// Composite (group, seq) keys must scan grouped and ordered.
	for g := 0; g < 5; g++ {
		for s := 0; s < 10; s++ {
			key := Composite(EncodeString(fmt.Sprintf("g%d", g)), EncodeUint64(uint64(s)))
			tr.Set(key, uint64(g*100+s))
		}
	}
	lo := Composite(EncodeString("g2"), EncodeUint64(0))
	hi := Composite(EncodeString("g2"), EncodeUint64(1<<62))
	var got []uint64
	tr.Scan(lo, hi, func(_ []byte, v uint64) bool { got = append(got, v); return true })
	if len(got) != 10 || got[0] != 200 || got[9] != 209 {
		t.Errorf("composite scan = %v", got)
	}
}

func TestAscendDescendRange(t *testing.T) {
	tr := New()
	const n = 1000
	for i := 0; i < n; i++ {
		// Shuffled insertion order.
		k := (i*7919 + 13) % n
		tr.Set(EncodeUint64(uint64(k)), uint64(k))
	}
	check := func(lo, hi int, wantFirst, wantLast uint64, wantLen int) {
		t.Helper()
		var loK, hiK []byte
		if lo >= 0 {
			loK = EncodeUint64(uint64(lo))
		}
		if hi >= 0 {
			hiK = EncodeUint64(uint64(hi))
		}
		var asc []uint64
		tr.AscendRange(loK, hiK, func(_ []byte, v uint64) bool { asc = append(asc, v); return true })
		var desc []uint64
		tr.DescendRange(loK, hiK, func(_ []byte, v uint64) bool { desc = append(desc, v); return true })
		if len(asc) != wantLen || len(desc) != wantLen {
			t.Fatalf("[%d,%d): len asc=%d desc=%d want %d", lo, hi, len(asc), len(desc), wantLen)
		}
		if wantLen == 0 {
			return
		}
		if asc[0] != wantFirst || asc[len(asc)-1] != wantLast {
			t.Fatalf("[%d,%d): asc %d..%d want %d..%d", lo, hi, asc[0], asc[len(asc)-1], wantFirst, wantLast)
		}
		for i := range desc {
			if desc[i] != asc[len(asc)-1-i] {
				t.Fatalf("[%d,%d): descend is not the reverse of ascend at %d", lo, hi, i)
			}
		}
	}
	check(100, 200, 100, 199, 100)
	check(-1, 50, 0, 49, 50)
	check(950, -1, 950, 999, 50)
	check(-1, -1, 0, 999, n)
	check(500, 500, 0, 0, 0)
	check(3, 4, 3, 3, 1)

	// Early termination.
	var got []uint64
	tr.DescendRange(nil, nil, func(_ []byte, v uint64) bool {
		got = append(got, v)
		return len(got) < 5
	})
	if len(got) != 5 || got[0] != 999 || got[4] != 995 {
		t.Fatalf("descend early exit = %v", got)
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := PrefixEnd([]byte{1, 2, 3}); string(got) != string([]byte{1, 2, 4}) {
		t.Fatalf("PrefixEnd(1,2,3) = %v", got)
	}
	if got := PrefixEnd([]byte{1, 0xFF}); string(got) != string([]byte{2}) {
		t.Fatalf("PrefixEnd(1,FF) = %v", got)
	}
	if got := PrefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("PrefixEnd(FF,FF) = %v, want nil", got)
	}
	// [p, PrefixEnd(p)) must capture exactly the keys extending p.
	tr := New()
	tr.Set([]byte{1, 2}, 1)
	tr.Set([]byte{1, 2, 0}, 2)
	tr.Set([]byte{1, 2, 0xFF}, 3)
	tr.Set([]byte{1, 3}, 4)
	tr.Set([]byte{1, 1, 9}, 5)
	var got []uint64
	p := []byte{1, 2}
	tr.AscendRange(p, PrefixEnd(p), func(_ []byte, v uint64) bool { got = append(got, v); return true })
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("prefix range = %v", got)
	}
}
