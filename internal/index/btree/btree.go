// Package btree implements an in-memory B+-tree keyed by byte strings with
// order-preserving key encoding helpers. The relational engine uses it for
// primary-key indexes and for the interface manager's key→position lookups
// during two-way synchronisation.
package btree

import (
	"bytes"
	"sort"
)

// degree is the maximum number of keys per node. 2*degree children max.
const degree = 64

// Tree is a B+-tree mapping byte-string keys to uint64 values (typically row
// ids). Keys are unique: inserting an existing key replaces its value.
// The tree is not safe for concurrent mutation; callers serialise access
// (the storage managers hold their own locks).
type Tree struct {
	root *node
	size int
}

type node struct {
	leaf     bool
	keys     [][]byte
	vals     []uint64 // leaf only, parallel to keys
	children []*node  // internal only, len = len(keys)+1
	next     *node    // leaf chain for range scans
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key and whether it exists.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i, ok := n.find(key)
	if !ok {
		return 0, false
	}
	return n.vals[i], true
}

// Set inserts or replaces the value for key.
func (t *Tree) Set(key []byte, val uint64) {
	k := make([]byte, len(key))
	copy(k, key)
	grew := t.insert(t.root, k, val)
	if grew != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{
			leaf:     false,
			keys:     [][]byte{grew.key},
			children: []*node{t.root, grew.right},
		}
		t.root = newRoot
	}
}

// Delete removes key and reports whether it was present. Nodes are allowed
// to underflow (no rebalancing on delete); this keeps the structure simple
// while preserving correctness and logarithmic search, which is sufficient
// for the workloads the engine runs.
func (t *Tree) Delete(key []byte) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i, ok := n.find(key)
	if !ok {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// Scan calls fn for every key/value with lo <= key < hi in ascending key
// order. A nil hi means "to the end"; a nil lo means "from the start".
// Iteration stops early if fn returns false.
func (t *Tree) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) {
	t.AscendRange(lo, hi, fn)
}

// AscendRange calls fn for every key/value with lo <= key < hi in ascending
// key order, walking the leaf chain. A nil lo means "from the start"; a nil
// hi means "to the end". Iteration stops early if fn returns false. It is
// the access-path layer's range iterator: the executor turns sargable WHERE
// conjuncts into [lo, hi) bounds over the order-preserving key encoding.
// dslint:perrow
func (t *Tree) AscendRange(lo, hi []byte, fn func(key []byte, val uint64) bool) {
	n := t.root
	for !n.leaf {
		if lo == nil {
			n = n.children[0]
		} else {
			n = n.children[n.childIndex(lo)]
		}
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
	}
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		start = 0
	}
}

// All calls fn for every key/value in ascending order.
func (t *Tree) All(fn func(key []byte, val uint64) bool) { t.Scan(nil, nil, fn) }

// DescendRange calls fn for every key/value with lo <= key < hi in
// descending key order. The leaf chain only links forward, so descent
// recurses through the internal nodes right-to-left instead. Iteration
// stops early if fn returns false. The executor uses it to serve
// ORDER BY ... DESC LIMIT k from an index without sorting.
// dslint:perrow
func (t *Tree) DescendRange(lo, hi []byte, fn func(key []byte, val uint64) bool) {
	t.descend(t.root, lo, hi, fn)
}

// descend visits n's keys in [lo, hi) in descending order. It returns false
// once iteration must stop — either fn returned false or a key below lo was
// reached, at which point every key the remaining traversal could visit is
// below lo as well.
func (t *Tree) descend(n *node, lo, hi []byte, fn func(key []byte, val uint64) bool) bool {
	if n.leaf {
		end := len(n.keys)
		if hi != nil {
			end = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], hi) >= 0 })
		}
		for i := end - 1; i >= 0; i-- {
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	// Children after childIndex(hi) hold only keys >= a separator >= hi.
	start := len(n.children) - 1
	if hi != nil {
		start = n.childIndex(hi)
	}
	for ci := start; ci >= 0; ci-- {
		if !t.descend(n.children[ci], lo, hi, fn) {
			return false
		}
	}
	return true
}

// PrefixEnd returns the smallest key that is strictly greater than every
// key beginning with p, or nil when no such key exists (p is all 0xFF).
// With the prefix-free value encodings of this package, [p, PrefixEnd(p))
// is exactly the set of keys whose leading components encode to p — the
// range an index scan probes for an equality prefix or an inclusive upper
// bound.
func PrefixEnd(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// split describes a node split propagating upward: key separates the original
// node from right.
type split struct {
	key   []byte
	right *node
}

func (t *Tree) insert(n *node, key []byte, val uint64) *split {
	if n.leaf {
		i, ok := n.find(key)
		if ok {
			n.vals[i] = val
			return nil
		}
		i = sort.Search(len(n.keys), func(j int) bool { return bytes.Compare(n.keys[j], key) > 0 })
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.size++
		return n.maybeSplitLeaf()
	}
	ci := n.childIndex(key)
	grew := t.insert(n.children[ci], key, val)
	if grew == nil {
		return nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = grew.key
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = grew.right
	return n.maybeSplitInternal()
}

func (n *node) maybeSplitLeaf() *split {
	if len(n.keys) <= degree {
		return nil
	}
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([]uint64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return &split{key: right.keys[0], right: right}
}

func (n *node) maybeSplitInternal() *split {
	if len(n.keys) <= degree {
		return nil
	}
	mid := len(n.keys) / 2
	sepKey := n.keys[mid]
	right := &node{
		leaf:     false,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return &split{key: sepKey, right: right}
}

// childIndex returns the index of the child subtree that may contain key.
func (n *node) childIndex(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
}

// find locates key within a leaf.
func (n *node) find(key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(j int) bool { return bytes.Compare(n.keys[j], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return i, true
	}
	return i, false
}
