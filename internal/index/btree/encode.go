package btree

import (
	"encoding/binary"
	"math"
)

// Order-preserving key encodings. Keys built from these helpers compare
// bytewise in the same order as the source values compare natively, so the
// B+-tree can index numbers, strings and composites without knowing their
// types.

// EncodeUint64 encodes an unsigned integer as 8 big-endian bytes.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeUint64 reverses EncodeUint64.
func DecodeUint64(b []byte) uint64 {
	return binary.BigEndian.Uint64(b)
}

// EncodeInt64 encodes a signed integer such that byte order matches numeric
// order (the sign bit is flipped).
func EncodeInt64(v int64) []byte {
	return EncodeUint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 reverses EncodeInt64.
func DecodeInt64(b []byte) int64 {
	return int64(DecodeUint64(b) ^ (1 << 63))
}

// EncodeFloat64 encodes a float such that byte order matches numeric order
// (standard IEEE-754 total-order trick: flip all bits for negatives, flip the
// sign bit for non-negatives).
func EncodeFloat64(f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return EncodeUint64(bits)
}

// DecodeFloat64 reverses EncodeFloat64.
func DecodeFloat64(b []byte) float64 {
	bits := DecodeUint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// EncodeString encodes a string with a 0x00 0x01 escape for embedded zero
// bytes and a 0x00 0x00 terminator, preserving lexicographic order and
// allowing strings to participate in composite keys.
func EncodeString(s string) []byte {
	out := make([]byte, 0, len(s)+2)
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			out = append(out, 0x00, 0x01)
		} else {
			out = append(out, s[i])
		}
	}
	return append(out, 0x00, 0x00)
}

// DecodeString reverses EncodeString, returning the string and the number of
// encoded bytes consumed.
func DecodeString(b []byte) (string, int) {
	out := make([]byte, 0, len(b))
	i := 0
	for i < len(b) {
		if b[i] == 0x00 {
			if i+1 < len(b) && b[i+1] == 0x01 {
				out = append(out, 0x00)
				i += 2
				continue
			}
			return string(out), i + 2
		}
		out = append(out, b[i])
		i++
	}
	return string(out), i
}

// Composite concatenates already-encoded key parts into a composite key.
func Composite(parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
