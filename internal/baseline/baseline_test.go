package baseline

import (
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func TestSetGetAndFormulas(t *testing.T) {
	s := New()
	if err := s.Set(sheet.Addr(0, 0), "10"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(sheet.Addr(1, 0), "32"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(sheet.Addr(0, 1), "=A1+A2"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(sheet.Addr(0, 1)); got.Num != 42 {
		t.Errorf("B1 = %v", got)
	}
	// Full recompute on every edit keeps dependents current.
	if err := s.Set(sheet.Addr(0, 0), "100"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(sheet.Addr(0, 1)); got.Num != 132 {
		t.Errorf("B1 after edit = %v", got)
	}
	// Two-pass recalc settles a simple chain.
	_ = s.Set(sheet.Addr(0, 2), "=B1*2")
	if got := s.Get(sheet.Addr(0, 2)); got.Num != 264 {
		t.Errorf("C1 = %v", got)
	}
	// Clearing and invalid formulas.
	_ = s.Set(sheet.Addr(1, 0), "")
	if s.CellCount() != 3 {
		t.Errorf("CellCount = %d", s.CellCount())
	}
	if err := s.Set(sheet.Addr(5, 5), "=1+"); err == nil {
		t.Error("invalid formula should fail")
	}
	if s.Evaluations() == 0 {
		t.Error("evaluations should be counted")
	}
	// SetValue path.
	s.SetValue(sheet.Addr(9, 0), sheet.Number(7))
	if s.Get(sheet.Addr(9, 0)).Num != 7 {
		t.Error("SetValue failed")
	}
}

func TestWindowFetch(t *testing.T) {
	s := New()
	s.RecalcOnEdit = false
	for r := 0; r < 100; r++ {
		for c := 0; c < 5; c++ {
			s.SetValue(sheet.Addr(r, c), sheet.Number(float64(r*10+c)))
		}
	}
	w := s.Window(sheet.RangeOf(50, 1, 59, 3))
	if len(w) != 10 || len(w[0]) != 3 {
		t.Fatalf("window shape = %dx%d", len(w), len(w[0]))
	}
	if w[0][0].Num != 501 || w[9][2].Num != 593 {
		t.Errorf("window content = %v ... %v", w[0][0], w[9][2])
	}
	// Huge window takes the scan path.
	big := s.Window(sheet.RangeOf(0, 0, 10000, 100))
	if big[99][4].Num != 994 {
		t.Error("scan-path window content wrong")
	}
}

func TestFilterRowsAndGroupAverage(t *testing.T) {
	s := New()
	s.RecalcOnEdit = false
	// 10 rows, col 0 = key, col 1..2 = scores.
	for r := 0; r < 10; r++ {
		s.SetValue(sheet.Addr(r, 0), sheet.String_(string(rune('a'+r))))
		s.SetValue(sheet.Addr(r, 1), sheet.Number(float64(r*10)))
		s.SetValue(sheet.Addr(r, 2), sheet.Number(float64(100-r*10)))
	}
	rows := s.FilterRows(10, []int{1, 2}, func(v sheet.Value) bool {
		f, ok := v.AsNumber()
		return ok && f > 80
	})
	if len(rows) != 3 { // rows 0,1 (col2 = 100, 90) and row 9 (col1 = 90)
		t.Errorf("FilterRows = %v", rows)
	}
	lookup := map[string]string{}
	for r := 0; r < 10; r++ {
		grp := "even"
		if r%2 == 1 {
			grp = "odd"
		}
		lookup[string(rune('a'+r))] = grp
	}
	avg := s.GroupAverage(10, 0, 1, lookup)
	if avg["even"] != 40 || avg["odd"] != 50 {
		t.Errorf("GroupAverage = %v", avg)
	}
}
