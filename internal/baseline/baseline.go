// Package baseline implements a deliberately conventional spreadsheet engine
// used as the comparison point for DataSpread's interface-aware design: no
// database backing, no positional index, no window awareness, and full
// recomputation of every formula after any change. It reproduces the
// behaviour the paper's introduction attributes to stock spreadsheet software
// ("beyond a few 100s of thousands of rows, the software is no longer
// responsive") so the experiments can compare interaction latency shapes.
package baseline

import (
	"strings"

	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/sheet"
)

// Spreadsheet is the naive engine: one sheet, a flat cell map, value-at-a-time
// formulas recomputed in full on every edit.
type Spreadsheet struct {
	cells    map[sheet.Address]sheet.Cell
	formulas map[sheet.Address]formula.Expr
	// RecalcOnEdit controls whether every edit triggers a full
	// recalculation (the default, mirroring an auto-calculate spreadsheet).
	RecalcOnEdit bool
	evaluations  uint64
}

// New creates an empty naive spreadsheet.
func New() *Spreadsheet {
	return &Spreadsheet{
		cells:        make(map[sheet.Address]sheet.Cell),
		formulas:     make(map[sheet.Address]formula.Expr),
		RecalcOnEdit: true,
	}
}

// CellCount returns the number of non-empty cells.
func (s *Spreadsheet) CellCount() int { return len(s.cells) }

// Evaluations returns the number of formula evaluations performed.
func (s *Spreadsheet) Evaluations() uint64 { return s.evaluations }

// Set enters user input into a cell: formulas start with "=", everything
// else is a literal. With RecalcOnEdit set, every formula on the sheet is
// re-evaluated afterwards.
func (s *Spreadsheet) Set(a sheet.Address, input string) error {
	trimmed := strings.TrimSpace(input)
	if trimmed == "" {
		delete(s.cells, a)
		delete(s.formulas, a)
	} else if strings.HasPrefix(trimmed, "=") {
		expr, err := formula.Parse(trimmed)
		if err != nil {
			return err
		}
		s.formulas[a] = expr
		s.cells[a] = sheet.Cell{Formula: strings.TrimPrefix(trimmed, "=")}
	} else {
		delete(s.formulas, a)
		s.cells[a] = sheet.Cell{Value: sheet.ParseLiteral(input)}
	}
	if s.RecalcOnEdit {
		s.RecalcAll()
	}
	return nil
}

// SetValue stores a literal value without parsing text input.
func (s *Spreadsheet) SetValue(a sheet.Address, v sheet.Value) {
	delete(s.formulas, a)
	s.cells[a] = sheet.Cell{Value: v}
	if s.RecalcOnEdit {
		s.RecalcAll()
	}
}

// Get returns the current value of a cell.
func (s *Spreadsheet) Get(a sheet.Address) sheet.Value { return s.cells[a].Value }

// dataSource adapts the naive sheet to the formula evaluator.
type dataSource struct{ s *Spreadsheet }

func (d dataSource) CellValue(_ string, a sheet.Address) sheet.Value { return d.s.cells[a].Value }

func (d dataSource) RangeValues(_ string, r sheet.Range) [][]sheet.Value {
	out := make([][]sheet.Value, r.Rows())
	for i := range out {
		out[i] = make([]sheet.Value, r.Cols())
		for j := range out[i] {
			out[i][j] = d.s.cells[sheet.Addr(r.Start.Row+i, r.Start.Col+j)].Value
		}
	}
	return out
}

// RecalcAll evaluates every formula on the sheet. Formulas are evaluated a
// fixed number of passes (two) to let simple chains settle; the naive engine
// makes no attempt at dependency ordering, which is part of what the
// DataSpread compute engine improves on.
func (s *Spreadsheet) RecalcAll() {
	src := dataSource{s: s}
	for pass := 0; pass < 2; pass++ {
		for a, expr := range s.formulas {
			v := formula.Eval(expr, &formula.Env{At: a, Data: src})
			c := s.cells[a]
			c.Value = v
			s.cells[a] = c
			s.evaluations++
		}
	}
}

// Window returns the dense values of a rectangular region. The naive engine
// has no index: it probes every address in the region against the flat map
// (or scans the whole map when the region is larger), which is the cost the
// interface storage manager's blocked layout avoids.
func (s *Spreadsheet) Window(r sheet.Range) [][]sheet.Value {
	out := make([][]sheet.Value, r.Rows())
	for i := range out {
		out[i] = make([]sheet.Value, r.Cols())
	}
	if r.Size() <= len(s.cells) {
		for i := 0; i < r.Rows(); i++ {
			for j := 0; j < r.Cols(); j++ {
				out[i][j] = s.cells[sheet.Addr(r.Start.Row+i, r.Start.Col+j)].Value
			}
		}
		return out
	}
	for a, c := range s.cells {
		if r.Contains(a) {
			out[a.Row-r.Start.Row][a.Col-r.Start.Col] = c.Value
		}
	}
	return out
}

// FilterRows returns the row indexes (0-based, within [0,rows)) whose cell in
// any of the given columns satisfies pred — the "manually identify the rows"
// operation from the paper's first motivating example, done by scanning the
// grid cell by cell.
func (s *Spreadsheet) FilterRows(rows int, cols []int, pred func(sheet.Value) bool) []int {
	var out []int
	for r := 0; r < rows; r++ {
		for _, c := range cols {
			if pred(s.cells[sheet.Addr(r, c)].Value) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// GroupAverage computes the average of valueCol grouped by the key found by
// looking up keyCol in a second region (VLOOKUP-per-row style), mirroring how
// a user joins two sheets without a database: one lookup formula per row.
func (s *Spreadsheet) GroupAverage(rows int, keyCol, valueCol int, lookup map[string]string) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]float64{}
	for r := 0; r < rows; r++ {
		key := s.cells[sheet.Addr(r, keyCol)].Value.AsString()
		grp, ok := lookup[key]
		if !ok {
			continue
		}
		if f, ok := s.cells[sheet.Addr(r, valueCol)].Value.AsNumber(); ok {
			sums[grp] += f
			counts[grp]++
		}
	}
	out := map[string]float64{}
	for g, sum := range sums {
		out[g] = sum / counts[g]
	}
	return out
}
