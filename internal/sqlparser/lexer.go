// Package sqlparser implements the SQL dialect DataSpread exposes through
// the DBSQL and DBTABLE spreadsheet constructs: a practical subset of SQL
// (SELECT with joins, grouping, ordering; INSERT/UPDATE/DELETE; CREATE/ALTER/
// DROP TABLE) extended with the paper's positional addressing constructs
// RANGEVALUE(cell) and RANGETABLE(range), which let a query refer to data on
// the spreadsheet by its position.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOperator // = <> != < <= > >= + - * / % ||
	TokPunct    // ( ) , . ;
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords recognised by the dialect. Identifiers matching these
// (case-insensitively) are tokenised as TokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "DISTINCT": true, "ALL": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"NATURAL": true, "CROSS": true, "ON": true, "USING": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "ALTER": true, "ADD": true,
	"INDEX": true, "UNIQUE": true, "EXPLAIN": true,
	"COLUMN": true, "RENAME": true, "TO": true, "IF": true, "EXISTS": true,
	"PRIMARY": true, "KEY": true, "NOT": true, "NULL": true, "DEFAULT": true,
	"AND": true, "OR": true, "IN": true, "IS": true, "LIKE": true,
	"BETWEEN": true, "TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"RANGEVALUE": true, "RANGETABLE": true,
}

// Lex tokenises a SQL string. It returns an error for unterminated strings
// or characters outside the dialect.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated block comment at %d", i)
			}
			i += end + 4
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			// Exponent.
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '"':
			// Quoted identifier.
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: sb.String(), Pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';':
			toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: i})
			i++
		case c == '|' && i+1 < n && input[i+1] == '|':
			toks = append(toks, Token{Kind: TokOperator, Text: "||", Pos: i})
			i += 2
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOperator, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOperator, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOperator, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOperator, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOperator, Text: "!=", Pos: i})
				i += 2
			} else {
				// Bare "!" appears in sheet-qualified positional references
				// such as RANGEVALUE(Sheet2!B1).
				toks = append(toks, Token{Kind: TokPunct, Text: "!", Pos: i})
				i++
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/' || c == '%':
			toks = append(toks, Token{Kind: TokOperator, Text: string(c), Pos: i})
			i++
		case c == ':':
			// Allowed inside RANGEVALUE/RANGETABLE references like A1:B10,
			// but those are parsed as argument tokens; expose as punct.
			toks = append(toks, Token{Kind: TokPunct, Text: ":", Pos: i})
			i++
		case c == '$':
			// Absolute-reference marker inside positional arguments.
			toks = append(toks, Token{Kind: TokPunct, Text: "$", Pos: i})
			i++
		case c == '?':
			// Positional statement parameter (prepared statements).
			toks = append(toks, Token{Kind: TokPunct, Text: "?", Pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
