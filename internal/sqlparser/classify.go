package sqlparser

// Statement classification and placeholder accounting. The core layer used
// to decide "does this SQL mutate?" by string-prefix matching on the raw
// text, which misclassified leading comments, whitespace and any future
// read-only statement kinds; classifying the parsed statement is exact.

// Mutates reports whether executing the statement can change database state.
// SELECT and EXPLAIN (of anything) are read-only; everything else — DML, DDL
// and transaction control — is treated as mutating. Transaction control
// counts as mutating so a replayed log preserves commit/rollback boundaries.
func Mutates(stmt Statement) bool {
	switch stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		// EXPLAIN only plans; it never executes the wrapped statement.
		return false
	}
	return true
}

// AnyMutates reports whether any statement of a script mutates.
func AnyMutates(stmts []Statement) bool {
	for _, s := range stmts {
		if Mutates(s) {
			return true
		}
	}
	return false
}

// NumPlaceholders counts the parameter slots of a statement (in every
// clause, including sub-selects and EXPLAIN-wrapped statements). Execution
// must bind exactly this many argument values. Positional '?' placeholders
// take one slot each; repeated ':name' placeholders share a slot per
// distinct name.
func NumPlaceholders(stmt Statement) int {
	n := 0
	WalkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Placeholder); ok && p.Index+1 > n {
			n = p.Index + 1
		}
	})
	return n
}

// ParamNames returns the statement's parameter names by slot index: the
// lower-cased ':name' of each slot for named statements, empty strings for
// positional '?' statements (and an all-empty slice when the styles are
// absent). len(ParamNames(stmt)) == NumPlaceholders(stmt).
func ParamNames(stmt Statement) []string {
	names := make([]string, NumPlaceholders(stmt))
	WalkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Placeholder); ok && p.Name != "" {
			names[p.Index] = p.Name
		}
	})
	return names
}

// WalkStatementExprs visits every expression node reachable from a
// statement: projections, FROM sources (recursing into sub-selects), join
// conditions, WHERE/GROUP BY/HAVING/ORDER BY, DML values and assignments,
// and column DEFAULT expressions.
func WalkStatementExprs(stmt Statement, fn func(Expr)) {
	walkAll := func(e Expr) { walkExprTree(e, fn) }
	switch st := stmt.(type) {
	case *SelectStmt:
		walkSelectExprs(st, fn)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				walkAll(e)
			}
		}
		if st.Select != nil {
			walkSelectExprs(st.Select, fn)
		}
	case *UpdateStmt:
		for _, a := range st.Set {
			walkAll(a.Value)
		}
		walkAll(st.Where)
	case *DeleteStmt:
		walkAll(st.Where)
	case *CreateTableStmt:
		for _, col := range st.Columns {
			walkAll(col.Default)
		}
		if st.AsSelect != nil {
			walkSelectExprs(st.AsSelect, fn)
		}
	case *AlterTableStmt:
		if st.AddColumn != nil {
			walkAll(st.AddColumn.Default)
		}
	case *ExplainStmt:
		WalkStatementExprs(st.Stmt, fn)
	}
}

func walkSelectExprs(st *SelectStmt, fn func(Expr)) {
	for _, item := range st.Columns {
		walkExprTree(item.Expr, fn)
	}
	walkTableRefExprs(st.From, fn)
	for _, j := range st.Joins {
		walkTableRefExprs(j.Table, fn)
		walkExprTree(j.On, fn)
	}
	walkExprTree(st.Where, fn)
	for _, g := range st.GroupBy {
		walkExprTree(g, fn)
	}
	walkExprTree(st.Having, fn)
	for _, o := range st.OrderBy {
		walkExprTree(o.Expr, fn)
	}
}

func walkTableRefExprs(ref TableRef, fn func(Expr)) {
	if sub, ok := ref.(*SubSelect); ok && sub.Select != nil {
		walkSelectExprs(sub.Select, fn)
	}
}

// walkExprTree visits every node of an expression tree (nil-safe). It is the
// parser-side twin of the executor's walker, kept here so statement-level
// tools (placeholder counting, classification) need no executor import.
func walkExprTree(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExprTree(x.Left, fn)
		walkExprTree(x.Right, fn)
	case *UnaryExpr:
		walkExprTree(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExprTree(a, fn)
		}
	case *InExpr:
		walkExprTree(x.X, fn)
		for _, a := range x.List {
			walkExprTree(a, fn)
		}
	case *IsNullExpr:
		walkExprTree(x.X, fn)
	case *BetweenExpr:
		walkExprTree(x.X, fn)
		walkExprTree(x.Lo, fn)
		walkExprTree(x.Hi, fn)
	case *LikeExpr:
		walkExprTree(x.X, fn)
		walkExprTree(x.Pattern, fn)
	case *CaseExpr:
		walkExprTree(x.Operand, fn)
		for _, w := range x.Whens {
			walkExprTree(w.When, fn)
			walkExprTree(w.Then, fn)
		}
		walkExprTree(x.Else, fn)
	}
}
