package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	// params counts the '?' placeholders of the statement being parsed;
	// each placeholder takes the next 0-based index in lexical order.
	// ParseMulti resets it per top-level statement.
	params int
	// named maps the statement's ':name' parameters (case-folded) to their
	// slot index; repeated names share one slot. A statement may use '?' or
	// ':name' but not both.
	named map[string]int
}

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokPunct, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after statement: %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseMulti parses a semicolon-separated script into statements.
func ParseMulti(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for !p.atEOF() {
		if p.accept(TokPunct, ";") {
			continue
		}
		p.params = 0
		p.named = nil
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.atEOF() && !p.accept(TokPunct, ";") {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().Text)
		}
	}
	return out, nil
}

// ParseExpr parses a standalone expression (used by tests and the formula
// engine when embedding SQL expressions).
func ParseExpr(input string) (Expr, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after expression: %q", p.peek().Text)
	}
	return e, nil
}

// --- token helpers ---

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

// accept consumes the next token if it matches kind and (case-insensitive)
// text; empty text matches any token of the kind.
func (p *Parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind != kind {
		return false
	}
	if text != "" && !strings.EqualFold(t.Text, text) {
		return false
	}
	p.next()
	return true
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

// peekKeyword reports whether the next token is the given keyword.
func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

// peekAheadKeyword reports whether the token n positions ahead is the given
// keyword (n = 0 is the next token).
func (p *Parser) peekAheadKeyword(n int, kw string) bool {
	if p.pos+n >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+n]
	return t.Kind == TokKeyword && t.Text == kw
}

// expect consumes a token of the given kind/text or fails.
func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && !strings.EqualFold(t.Text, text)) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, p.errorf("expected %s, got %q", want, tokenDesc(t))
	}
	return p.next(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	_, err := p.expect(TokKeyword, kw)
	return err
}

// expectIdent consumes an identifier (or a non-reserved keyword used as a
// name) and returns its text.
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.next()
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", tokenDesc(t))
}

func tokenDesc(t Token) string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return t.Text
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

// --- statements ---

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected a statement, got %q", tokenDesc(t))
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		if p.peekAheadKeyword(1, "INDEX") || p.peekAheadKeyword(1, "UNIQUE") {
			return p.parseCreateIndex()
		}
		return p.parseCreateTable()
	case "ALTER":
		return p.parseAlterTable()
	case "DROP":
		if p.peekAheadKeyword(1, "INDEX") {
			return p.parseDropIndex()
		}
		return p.parseDropTable()
	case "EXPLAIN":
		p.next()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner}, nil
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.Text)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	// The paper's demo queries write "SELECT FROM ACTORS ..."; treat an
	// immediately following FROM as an implicit "*" projection.
	if p.peekKeyword("FROM") {
		stmt.Columns = []SelectItem{{Star: true}}
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, item)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = from
		for {
			join, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			stmt.Joins = append(stmt.Joins, join)
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Limit = &n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Offset = &n
	}
	return stmt, nil
}

func (p *Parser) parseIntLiteral() (int, error) {
	t, err := p.expect(TokNumber, "")
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, p.errorf("invalid number %q", t.Text)
	}
	return int(f), nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.peek().Kind == TokOperator && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOperator && p.toks[p.pos+2].Text == "*" {
		table := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, TableStar: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.peekKeyword("RANGETABLE") {
		return p.parseRangeTable()
	}
	if p.accept(TokPunct, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		sub := &SubSelect{Select: sel}
		if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			sub.Alias = alias
		} else if p.peek().Kind == TokIdent {
			sub.Alias = p.next().Text
		}
		return sub, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// parseRangeTable parses RANGETABLE(<range>[, TRUE|FALSE]) [alias].
func (p *Parser) parseRangeTable() (TableRef, error) {
	if err := p.expectKeyword("RANGETABLE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	refText, err := p.parsePositionalRef()
	if err != nil {
		return nil, err
	}
	rt := &RangeTableRef{Ref: refText, HeaderRow: true}
	if p.accept(TokPunct, ",") {
		switch {
		case p.acceptKeyword("TRUE"):
			rt.HeaderRow = true
		case p.acceptKeyword("FALSE"):
			rt.HeaderRow = false
		default:
			return nil, p.errorf("expected TRUE or FALSE after ',' in RANGETABLE")
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		rt.Alias = alias
	} else if p.peek().Kind == TokIdent {
		rt.Alias = p.next().Text
	}
	return rt, nil
}

// parsePositionalRef reconstructs the textual cell or range reference inside
// RANGEVALUE(...)/RANGETABLE(...): a sequence of identifiers, numbers and the
// punctuation characters $ : ! . until a ',' or ')'.
func (p *Parser) parsePositionalRef() (string, error) {
	var sb strings.Builder
	for {
		t := p.peek()
		switch {
		case t.Kind == TokIdent || t.Kind == TokNumber || t.Kind == TokKeyword:
			sb.WriteString(t.Text)
			p.next()
		case t.Kind == TokPunct && (t.Text == "$" || t.Text == ":" || t.Text == "!" || t.Text == "."):
			sb.WriteString(t.Text)
			p.next()
		case t.Kind == TokString:
			sb.WriteString(t.Text)
			p.next()
		default:
			if sb.Len() == 0 {
				return "", p.errorf("expected a cell or range reference, got %q", tokenDesc(t))
			}
			return sb.String(), nil
		}
	}
}

func (p *Parser) parseJoin() (Join, bool, error) {
	var j Join
	natural := false
	if p.peekKeyword("NATURAL") {
		natural = true
		p.next()
	}
	switch {
	case p.acceptKeyword("JOIN"):
		j.Type = JoinInner
	case p.peekKeyword("INNER"):
		p.next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return j, false, err
		}
		j.Type = JoinInner
	case p.peekKeyword("LEFT"):
		p.next()
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return j, false, err
		}
		j.Type = JoinLeft
	case p.peekKeyword("CROSS"):
		p.next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return j, false, err
		}
		j.Type = JoinCross
	case p.accept(TokPunct, ","):
		j.Type = JoinCross
	default:
		if natural {
			return j, false, p.errorf("expected JOIN after NATURAL")
		}
		return j, false, nil
	}
	j.Natural = natural
	table, err := p.parseTableRef()
	if err != nil {
		return j, false, err
	}
	j.Table = table
	if p.acceptKeyword("ON") {
		e, err := p.parseExpr()
		if err != nil {
			return j, false, err
		}
		j.On = e
	} else if p.acceptKeyword("USING") {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return j, false, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return j, false, err
			}
			j.Using = append(j.Using, col)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return j, false, err
		}
	}
	return j, true, nil
}

func (p *Parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.accept(TokPunct, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
		return stmt, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	return stmt, nil
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOperator, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: e})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *Parser) parseCreateTable() (*CreateTableStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.AsSelect = sel
		return stmt, nil
	}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	var def ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return def, err
	}
	def.Name = name
	// Type is optional (DataSpread columns may be dynamically typed).
	if p.peek().Kind == TokIdent {
		def.Type = p.next().Text
		// Allow parenthesised type parameters, e.g. VARCHAR(255).
		if p.accept(TokPunct, "(") {
			for !p.accept(TokPunct, ")") {
				if p.atEOF() {
					return def, p.errorf("unterminated type parameters")
				}
				p.next()
			}
		}
	}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return def, err
			}
			def.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return def, err
			}
			def.NotNull = true
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return def, err
			}
			def.Default = e
		default:
			return def, nil
		}
	}
}

func (p *Parser) parseAlterTable() (*AlterTableStmt, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &AlterTableStmt{Table: name}
	switch {
	case p.acceptKeyword("ADD"):
		p.acceptKeyword("COLUMN")
		def, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.AddColumn = &def
	case p.acceptKeyword("DROP"):
		p.acceptKeyword("COLUMN")
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.DropColumn = col
	case p.acceptKeyword("RENAME"):
		p.acceptKeyword("COLUMN")
		oldName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		newName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.RenameColumn = &[2]string{oldName, newName}
	default:
		return nil, p.errorf("expected ADD, DROP or RENAME in ALTER TABLE")
	}
	return stmt, nil
}

func (p *Parser) parseDropTable() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

// parseCreateIndex parses CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON
// table (col, ...).
func (p *Parser) parseCreateIndex() (*CreateIndexStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{}
	if p.acceptKeyword("UNIQUE") {
		stmt.Unique = true
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseDropIndex parses DROP INDEX [IF EXISTS] name.
func (p *Parser) parseDropIndex() (*DropIndexStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	stmt := &DropIndexStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

// --- expressions ---

// parseExpr parses an expression with OR at the lowest precedence.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE.
	for {
		if p.acceptKeyword("IS") {
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{X: left, Not: not}
			continue
		}
		notBefore := false
		if p.peekKeyword("NOT") && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokKeyword &&
			(p.toks[p.pos+1].Text == "IN" || p.toks[p.pos+1].Text == "BETWEEN" || p.toks[p.pos+1].Text == "LIKE") {
			p.next()
			notBefore = true
		}
		switch {
		case p.acceptKeyword("IN"):
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			in := &InExpr{X: left, Not: notBefore}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			left = in
			continue
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: notBefore}
			continue
		case p.acceptKeyword("LIKE"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{X: left, Pattern: pat, Not: notBefore}
			continue
		}
		if notBefore {
			return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
		}
		t := p.peek()
		if t.Kind == TokOperator {
			switch t.Text {
			case "=", "<>", "!=", "<", "<=", ">", ">=":
				p.next()
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				op := t.Text
				if op == "!=" {
					op = "<>"
				}
				left = &BinaryExpr{Op: op, Left: left, Right: right}
				continue
			}
		}
		return left, nil
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOperator && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOperator && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOperator && (t.Text == "-" || t.Text == "+") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Value: sheet.Number(f)}, nil
	case TokString:
		p.next()
		return &Literal{Value: sheet.String_(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &NullLiteral{}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: sheet.Bool_(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: sheet.Bool_(false)}, nil
		case "RANGEVALUE":
			p.next()
			if _, err := p.expect(TokPunct, "("); err != nil {
				return nil, err
			}
			ref, err := p.parsePositionalRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return &RangeValueExpr{Ref: ref}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "?" {
			p.next()
			if len(p.named) > 0 {
				return nil, p.errorf("cannot mix '?' and ':name' parameters in one statement")
			}
			ph := &Placeholder{Index: p.params}
			p.params++
			return ph, nil
		}
		if t.Text == ":" {
			// A named parameter is ':' immediately followed (no whitespace)
			// by an identifier: ":id". The colon elsewhere (A1:B10 ranges)
			// is consumed by the positional-reference parser, never here.
			nameTok := p.toks[p.pos+1]
			if (nameTok.Kind == TokIdent || nameTok.Kind == TokKeyword) && nameTok.Pos == t.Pos+1 {
				if p.params > len(p.named) {
					return nil, p.errorf("cannot mix '?' and ':name' parameters in one statement")
				}
				p.next()
				p.next()
				name := strings.ToLower(nameTok.Text)
				if p.named == nil {
					p.named = make(map[string]int)
				}
				idx, ok := p.named[name]
				if !ok {
					idx = p.params
					p.named[name] = idx
					p.params++
				}
				return &Placeholder{Index: idx, Name: name}, nil
			}
		}
		return nil, p.errorf("unexpected %q in expression", t.Text)
	case TokIdent:
		name := p.next().Text
		// Function call.
		if p.accept(TokPunct, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.peek().Kind == TokOperator && p.peek().Text == "*" {
				p.next()
				fc.Star = true
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			if !p.accept(TokPunct, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column reference.
		if p.accept(TokPunct, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	default:
		return nil, p.errorf("unexpected %q in expression", tokenDesc(t))
	}
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
