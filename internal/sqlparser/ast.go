package sqlparser

import "github.com/dataspread/dataspread/internal/sheet"

// Statement is implemented by every parsed SQL statement.
type Statement interface{ stmtNode() }

// Expr is implemented by every expression node.
type Expr interface{ exprNode() }

// TableRef is a relation appearing in FROM or JOIN: a named table, a
// positional RANGETABLE reference, or a parenthesised sub-select.
type TableRef interface{ tableRefNode() }

// --- Statements ---

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Columns  []SelectItem
	From     TableRef // nil for table-less SELECT (e.g. SELECT 1+1)
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int
	Offset   *int
}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	// Star is true for a bare "*"; TableStar holds the qualifier of
	// "t.*" when present.
	Star      bool
	TableStar string
	Expr      Expr
	Alias     string
}

// JoinType enumerates supported join types.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

// Join is one JOIN clause.
type Join struct {
	Type    JoinType
	Natural bool
	Table   TableRef
	On      Expr
	Using   []string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO ... VALUES ... or INSERT INTO ... SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// Assignment is one "col = expr" in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// DeleteStmt is DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColumnDef is one column in CREATE TABLE or ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	Type       string
	PrimaryKey bool
	NotNull    bool
	Default    Expr
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	AsSelect    *SelectStmt
}

// AlterTableStmt is ALTER TABLE name ADD COLUMN ... / DROP COLUMN ... /
// RENAME COLUMN a TO b. Exactly one of the action fields is set.
type AlterTableStmt struct {
	Table        string
	AddColumn    *ColumnDef
	DropColumn   string
	RenameColumn *[2]string // old, new
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table
// (col, ...). Secondary indexes accelerate point and range WHERE conjuncts
// on non-key columns (see sqlexec's access-path layer).
type CreateIndexStmt struct {
	Name        string
	Table       string
	Columns     []string
	Unique      bool
	IfNotExists bool
}

// DropIndexStmt is DROP INDEX [IF EXISTS] name.
type DropIndexStmt struct {
	Name     string
	IfExists bool
}

// ExplainStmt is EXPLAIN <statement>: instead of executing, report the
// access path the planner would choose for each FROM source (and for the
// target table of UPDATE/DELETE).
type ExplainStmt struct {
	Stmt Statement
}

// BeginStmt, CommitStmt and RollbackStmt are transaction control statements.
type (
	// BeginStmt starts a transaction.
	BeginStmt struct{}
	// CommitStmt commits the current transaction.
	CommitStmt struct{}
	// RollbackStmt rolls back the current transaction.
	RollbackStmt struct{}
)

func (*SelectStmt) stmtNode()      {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*AlterTableStmt) stmtNode()  {}
func (*DropTableStmt) stmtNode()   {}
func (*CreateIndexStmt) stmtNode() {}
func (*DropIndexStmt) stmtNode()   {}
func (*ExplainStmt) stmtNode()     {}
func (*BeginStmt) stmtNode()       {}
func (*CommitStmt) stmtNode()      {}
func (*RollbackStmt) stmtNode()    {}

// --- Table references ---

// TableName is a named table, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// RangeTableRef is the paper's RANGETABLE(range) construct: a spreadsheet
// range used as a relation. Ref is the range text ("A1:D100"), optionally
// with a sheet qualifier ("Sheet2!A1:D100"); HeaderRow indicates whether the
// first row of the range carries column names.
type RangeTableRef struct {
	Ref       string
	Alias     string
	HeaderRow bool
}

// SubSelect is a parenthesised SELECT in FROM.
type SubSelect struct {
	Select *SelectStmt
	Alias  string
}

func (*TableName) tableRefNode()     {}
func (*RangeTableRef) tableRefNode() {}
func (*SubSelect) tableRefNode()     {}

// --- Expressions ---

// Literal is a constant value.
type Literal struct {
	Value sheet.Value
}

// NullLiteral is the SQL NULL literal (distinct from an empty string).
type NullLiteral struct{}

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

// BinaryExpr is a binary operation. Op is the upper-cased operator text
// ("=", "<>", "<", "+", "AND", "OR", "||", ...).
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

// UnaryExpr is a unary operation: "-" or "NOT".
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is a function invocation; Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// RangeValueExpr is the paper's RANGEVALUE(cell) construct: a scalar read
// from the spreadsheet at the given (possibly sheet-qualified) address.
type RangeValueExpr struct {
	Ref string
}

// Placeholder is a statement parameter: positional ("?", Name empty) or
// named (":name"). Index is the 0-based parameter slot the placeholder
// reads; positional placeholders take the next slot in lexical order, named
// placeholders take one slot per distinct (case-folded) name, so ":id = :id"
// binds a single argument. A statement uses one style only — mixing '?' and
// ':name' is a parse error.
type Placeholder struct {
	Index int
	Name  string
}

// InExpr is "x [NOT] IN (e1, e2, ...)".
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

// LikeExpr is "x [NOT] LIKE pattern" with % and _ wildcards.
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// CaseExpr is "CASE [operand] WHEN ... THEN ... [ELSE ...] END".
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct {
	When Expr
	Then Expr
}

func (*Literal) exprNode()        {}
func (*NullLiteral) exprNode()    {}
func (*ColumnRef) exprNode()      {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*FuncCall) exprNode()       {}
func (*RangeValueExpr) exprNode() {}
func (*Placeholder) exprNode()    {}
func (*InExpr) exprNode()         {}
func (*IsNullExpr) exprNode()     {}
func (*BetweenExpr) exprNode()    {}
func (*LikeExpr) exprNode()       {}
func (*CaseExpr) exprNode()       {}
