package sqlparser

import "testing"

func TestPlaceholderParsing(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE id = ? AND g IN (?, ?) AND v BETWEEN ? AND ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := NumPlaceholders(stmt); got != 5 {
		t.Fatalf("NumPlaceholders = %d, want 5", got)
	}
	// Indexes are assigned in lexical order.
	var idxs []int
	WalkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Placeholder); ok {
			idxs = append(idxs, p.Index)
		}
	})
	for i, idx := range idxs {
		if idx != i {
			t.Fatalf("placeholder %d has index %d (order %v)", i, idx, idxs)
		}
	}

	// Placeholders count inside every statement kind and nested selects.
	cases := map[string]int{
		"INSERT INTO t VALUES (?, ?, 3)":                                2,
		"UPDATE t SET a = ?, b = 2 WHERE c = ?":                         2,
		"DELETE FROM t WHERE a = ? OR b = ?":                            2,
		"EXPLAIN SELECT a FROM t WHERE id = ?":                          1,
		"SELECT a FROM (SELECT a FROM t WHERE b = ?) s WHERE a > ?":     2,
		"INSERT INTO t SELECT a FROM u WHERE b = ?":                     1,
		"SELECT a FROM t JOIN u ON t.id = u.id AND u.k = ? WHERE a > ?": 2,
		"SELECT a FROM t ORDER BY a LIMIT 5":                            0,
	}
	for sql, want := range cases {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := NumPlaceholders(stmt); got != want {
			t.Errorf("%s: NumPlaceholders = %d, want %d", sql, got, want)
		}
	}
}

func TestParseMultiResetsPlaceholderIndexes(t *testing.T) {
	stmts, err := ParseMulti("UPDATE t SET a = ?; DELETE FROM t WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range stmts {
		WalkStatementExprs(stmt, func(e Expr) {
			if p, ok := e.(*Placeholder); ok && p.Index != 0 {
				t.Errorf("statement %d placeholder index = %d, want 0", i, p.Index)
			}
		})
	}
}

func TestMutatesClassification(t *testing.T) {
	cases := map[string]bool{
		"SELECT 1":        false,
		"  \n\t SELECT 1": false,
		"-- leading comment\nSELECT a FROM t where b = 1": false,
		"/* block comment */ SELECT 1":                    false,
		"EXPLAIN SELECT a FROM t":                         false,
		"EXPLAIN UPDATE t SET a = 1":                      false, // EXPLAIN never executes
		"-- note\nINSERT INTO t VALUES (1)":               true,
		"UPDATE t SET a = 1":                              true,
		"DELETE FROM t":                                   true,
		"CREATE TABLE t (a INT)":                          true,
		"DROP TABLE t":                                    true,
		"CREATE INDEX i ON t (a)":                         true,
		"BEGIN":                                           true,
		"COMMIT":                                          true,
	}
	for sql, want := range cases {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := Mutates(stmt); got != want {
			t.Errorf("Mutates(%q) = %v, want %v", sql, got, want)
		}
	}
	if !AnyMutates(mustMulti(t, "SELECT 1; INSERT INTO t VALUES (1)")) {
		t.Error("AnyMutates missed the INSERT")
	}
	if AnyMutates(mustMulti(t, "SELECT 1; EXPLAIN DELETE FROM t")) {
		t.Error("AnyMutates flagged a read-only script")
	}
}

func mustMulti(t *testing.T, sql string) []Statement {
	t.Helper()
	stmts, err := ParseMulti(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}
