package sqlparser

// SplitConjuncts flattens a boolean expression into its AND-ed conjuncts:
// "a AND (b AND c)" yields [a, b, c], and any expression that is not an AND
// yields itself as the single conjunct. A nil expression yields nil. The
// executor uses the split to push sargable conjuncts below joins and into
// table scans independently of the rest of the WHERE clause.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// CombineConjuncts rebuilds a left-deep AND tree from conjuncts, the inverse
// of SplitConjuncts. It returns nil for an empty slice.
func CombineConjuncts(parts []Expr) Expr {
	var out Expr
	for _, p := range parts {
		if out == nil {
			out = p
			continue
		}
		out = &BinaryExpr{Op: "AND", Left: out, Right: p}
	}
	return out
}
