package sqlparser

import (
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s', 3.5e2 FROM t WHERE x <> 1 -- comment\n AND y != 2 /* block */ OR z || 'a'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "it's") {
		t.Errorf("escaped quote lost: %q", joined)
	}
	if !strings.Contains(joined, "3.5e2") {
		t.Errorf("exponent number lost: %q", joined)
	}
	if !strings.Contains(joined, "<>") || !strings.Contains(joined, "!=") || !strings.Contains(joined, "||") {
		t.Errorf("operators lost: %q", joined)
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexQuotedIdentifierAndErrors(t *testing.T) {
	toks, err := Lex(`SELECT "Weird Name" FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokIdent && tok.Text == "Weird Name" {
			found = true
		}
	}
	if !found {
		t.Error("quoted identifier not lexed")
	}
	for _, bad := range []string{"'unterminated", `"unterminated`, "/* unterminated", "SELECT #"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) should fail", bad)
		}
	}
}

func TestParseSelectBasic(t *testing.T) {
	stmt := mustParse(t, "SELECT id, name AS n, score*2 doubled FROM students WHERE score >= 90 ORDER BY score DESC, name LIMIT 10 OFFSET 5")
	sel := stmt.(*SelectStmt)
	if len(sel.Columns) != 3 {
		t.Fatalf("columns = %d", len(sel.Columns))
	}
	if sel.Columns[1].Alias != "n" || sel.Columns[2].Alias != "doubled" {
		t.Error("aliases wrong")
	}
	tn := sel.From.(*TableName)
	if tn.Name != "students" {
		t.Error("from wrong")
	}
	if sel.Where == nil {
		t.Error("where missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("order by wrong")
	}
	if sel.Limit == nil || *sel.Limit != 10 || sel.Offset == nil || *sel.Offset != 5 {
		t.Error("limit/offset wrong")
	}
}

func TestParseSelectStarForms(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*SelectStmt)
	if !sel.Columns[0].Star {
		t.Error("* not parsed")
	}
	sel = mustParse(t, "SELECT t.* , x FROM t").(*SelectStmt)
	if !sel.Columns[0].Star || sel.Columns[0].TableStar != "t" {
		t.Error("t.* not parsed")
	}
	// The paper's implicit-star form: SELECT FROM t WHERE ...
	sel = mustParse(t, "SELECT FROM actors WHERE actorid = 3").(*SelectStmt)
	if len(sel.Columns) != 1 || !sel.Columns[0].Star {
		t.Error("SELECT FROM should imply *")
	}
}

func TestParseSelectNoFrom(t *testing.T) {
	sel := mustParse(t, "SELECT 1+2*3, 'x'").(*SelectStmt)
	if sel.From != nil || len(sel.Columns) != 2 {
		t.Error("table-less select wrong")
	}
	be := sel.Columns[0].Expr.(*BinaryExpr)
	if be.Op != "+" {
		t.Error("precedence: outermost op should be +")
	}
	if be.Right.(*BinaryExpr).Op != "*" {
		t.Error("precedence: * should bind tighter")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustParse(t, `SELECT m.title, a.name FROM movies m
		JOIN movies2actors ma ON m.movieid = ma.movieid
		LEFT JOIN actors a ON ma.actorid = a.actorid
		NATURAL JOIN ratings`).(*SelectStmt)
	if len(sel.Joins) != 3 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	if sel.Joins[0].Type != JoinInner || sel.Joins[0].On == nil {
		t.Error("inner join wrong")
	}
	if sel.Joins[1].Type != JoinLeft {
		t.Error("left join wrong")
	}
	if !sel.Joins[2].Natural {
		t.Error("natural join wrong")
	}
	// USING and comma joins.
	sel = mustParse(t, "SELECT * FROM a JOIN b USING (id, grp), c").(*SelectStmt)
	if len(sel.Joins) != 2 || len(sel.Joins[0].Using) != 2 || sel.Joins[1].Type != JoinCross {
		t.Error("USING / comma join wrong")
	}
}

func TestParseGroupByHaving(t *testing.T) {
	sel := mustParse(t, `SELECT grp, AVG(score) FROM students GROUP BY grp HAVING COUNT(*) > 5`).(*SelectStmt)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group by / having wrong")
	}
	fc := sel.Columns[1].Expr.(*FuncCall)
	if fc.Name != "AVG" || len(fc.Args) != 1 {
		t.Error("aggregate call wrong")
	}
	// COUNT(*) and COUNT(DISTINCT x).
	sel = mustParse(t, "SELECT COUNT(*), COUNT(DISTINCT city) FROM t").(*SelectStmt)
	if !sel.Columns[0].Expr.(*FuncCall).Star {
		t.Error("COUNT(*) wrong")
	}
	if !sel.Columns[1].Expr.(*FuncCall).Distinct {
		t.Error("COUNT(DISTINCT) wrong")
	}
}

func TestParseSubSelectAndDistinct(t *testing.T) {
	sel := mustParse(t, "SELECT DISTINCT name FROM (SELECT * FROM students WHERE score > 50) s").(*SelectStmt)
	if !sel.Distinct {
		t.Error("DISTINCT lost")
	}
	sub := sel.From.(*SubSelect)
	if sub.Alias != "s" || sub.Select == nil {
		t.Error("subselect wrong")
	}
}

func TestParseRangeConstructs(t *testing.T) {
	// The paper's Figure 2a query shape.
	sel := mustParse(t, `SELECT title FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors
		WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE($B$2)`).(*SelectStmt)
	var rvs []string
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *RangeValueExpr:
			rvs = append(rvs, x.Ref)
		}
	}
	walk(sel.Where)
	if len(rvs) != 2 || rvs[0] != "B1" || rvs[1] != "$B$2" {
		t.Errorf("RANGEVALUE refs = %v", rvs)
	}
	// RANGETABLE in FROM and JOIN, with sheet qualifier and header flag.
	sel = mustParse(t, `SELECT * FROM actors NATURAL JOIN RANGETABLE(A1:D100)`).(*SelectStmt)
	rt := sel.Joins[0].Table.(*RangeTableRef)
	if rt.Ref != "A1:D100" || !rt.HeaderRow {
		t.Errorf("RANGETABLE = %+v", rt)
	}
	sel = mustParse(t, `SELECT * FROM RANGETABLE(Sheet2!A1:C50, FALSE) r WHERE r.col1 > 5`).(*SelectStmt)
	rt = sel.From.(*RangeTableRef)
	if rt.Ref != "Sheet2!A1:C50" || rt.HeaderRow || rt.Alias != "r" {
		t.Errorf("RANGETABLE with options = %+v", rt)
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM t WHERE a IN (1,2,3) AND b NOT IN ('x')
		AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 2 AND 3
		AND e LIKE 'ab%' AND f NOT LIKE '_z'
		AND g IS NULL AND h IS NOT NULL AND NOT (i = 1)`).(*SelectStmt)
	if sel.Where == nil {
		t.Fatal("where missing")
	}
	counts := map[string]int{}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			counts["not"]++
			walk(x.X)
		case *InExpr:
			counts["in"]++
			if x.Not {
				counts["notin"]++
			}
		case *BetweenExpr:
			counts["between"]++
		case *LikeExpr:
			counts["like"]++
		case *IsNullExpr:
			counts["isnull"]++
		}
	}
	walk(sel.Where)
	if counts["in"] != 2 || counts["notin"] != 1 || counts["between"] != 2 ||
		counts["like"] != 2 || counts["isnull"] != 2 || counts["not"] != 1 {
		t.Errorf("predicate counts = %v", counts)
	}
}

func TestParseCaseExpr(t *testing.T) {
	sel := mustParse(t, `SELECT CASE WHEN score >= 90 THEN 'A' WHEN score >= 80 THEN 'B' ELSE 'C' END FROM t`).(*SelectStmt)
	c := sel.Columns[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil || c.Operand != nil {
		t.Errorf("case = %+v", c)
	}
	sel = mustParse(t, `SELECT CASE grp WHEN 'ug' THEN 1 ELSE 2 END FROM t`).(*SelectStmt)
	c = sel.Columns[0].Expr.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 1 {
		t.Error("operand case wrong")
	}
	if _, err := Parse("SELECT CASE END FROM t"); err == nil {
		t.Error("CASE without WHEN should fail")
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO students (id, name, score) VALUES (1, 'alice', 95.5), (2, 'bob', NULL)").(*InsertStmt)
	if ins.Table != "students" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if _, ok := ins.Rows[1][2].(*NullLiteral); !ok {
		t.Error("NULL literal wrong")
	}
	lit := ins.Rows[0][1].(*Literal)
	if lit.Value.Str != "alice" {
		t.Error("string literal wrong")
	}
	// Insert without column list, and INSERT ... SELECT.
	ins = mustParse(t, "INSERT INTO t VALUES (1, TRUE, -2.5)").(*InsertStmt)
	if len(ins.Columns) != 0 || len(ins.Rows[0]) != 3 {
		t.Error("insert without columns wrong")
	}
	if u, ok := ins.Rows[0][2].(*UnaryExpr); !ok || u.Op != "-" {
		t.Error("negative literal should be unary minus")
	}
	ins = mustParse(t, "INSERT INTO archive SELECT * FROM t WHERE year < 2000").(*InsertStmt)
	if ins.Select == nil {
		t.Error("INSERT ... SELECT wrong")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := mustParse(t, "UPDATE students SET score = score + 5, name = 'x' WHERE id = 3").(*UpdateStmt)
	if upd.Table != "students" || len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM students WHERE score < 50").(*DeleteStmt)
	if del.Table != "students" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	del = mustParse(t, "DELETE FROM students").(*DeleteStmt)
	if del.Where != nil {
		t.Error("unconditional delete should have nil where")
	}
}

func TestParseCreateAlterDrop(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE IF NOT EXISTS students (
		id INT PRIMARY KEY,
		name VARCHAR(80) NOT NULL,
		score NUMERIC DEFAULT 0,
		active BOOLEAN
	)`).(*CreateTableStmt)
	if !ct.IfNotExists || ct.Name != "students" || len(ct.Columns) != 4 {
		t.Fatalf("create = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[1].NotNull || ct.Columns[2].Default == nil {
		t.Error("column constraints wrong")
	}
	if ct.Columns[1].Type != "VARCHAR" {
		t.Errorf("type = %q", ct.Columns[1].Type)
	}
	cas := mustParse(t, "CREATE TABLE top AS SELECT * FROM students WHERE score > 90").(*CreateTableStmt)
	if cas.AsSelect == nil {
		t.Error("CREATE TABLE AS SELECT wrong")
	}
	at := mustParse(t, "ALTER TABLE students ADD COLUMN email TEXT DEFAULT 'none'").(*AlterTableStmt)
	if at.AddColumn == nil || at.AddColumn.Name != "email" || at.AddColumn.Default == nil {
		t.Errorf("alter add = %+v", at)
	}
	at = mustParse(t, "ALTER TABLE students DROP COLUMN email").(*AlterTableStmt)
	if at.DropColumn != "email" {
		t.Error("alter drop wrong")
	}
	at = mustParse(t, "ALTER TABLE students RENAME COLUMN score TO points").(*AlterTableStmt)
	if at.RenameColumn == nil || at.RenameColumn[1] != "points" {
		t.Error("alter rename wrong")
	}
	dt := mustParse(t, "DROP TABLE IF EXISTS students").(*DropTableStmt)
	if !dt.IfExists || dt.Name != "students" {
		t.Error("drop table wrong")
	}
}

func TestParseTransactionStatements(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN wrong")
	}
	if _, ok := mustParse(t, "BEGIN TRANSACTION").(*BeginStmt); !ok {
		t.Error("BEGIN TRANSACTION wrong")
	}
	if _, ok := mustParse(t, "COMMIT").(*CommitStmt); !ok {
		t.Error("COMMIT wrong")
	}
	if _, ok := mustParse(t, "ROLLBACK;").(*RollbackStmt); !ok {
		t.Error("ROLLBACK wrong")
	}
}

func TestParseMultiStatements(t *testing.T) {
	stmts, err := ParseMulti(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseMulti("SELECT 1 SELECT 2"); err == nil {
		t.Error("missing semicolon should fail")
	}
	empty, err := ParseMulti(" ;; ")
	if err != nil || len(empty) != 0 {
		t.Error("empty script should parse to no statements")
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("a.b + 2 * UPPER(name) || 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*BinaryExpr); !ok {
		t.Error("expected binary expression")
	}
	if _, err := ParseExpr("1 +"); err == nil {
		t.Error("dangling operator should fail")
	}
	if _, err := ParseExpr("1 2"); err == nil {
		t.Error("trailing junk should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROB x",
		"SELECT FROM",           // implicit star but missing table
		"SELECT * FROM",         // missing table
		"SELECT * FROM t WHERE", // missing predicate
		"SELECT * FROM t GROUP", // missing BY
		"INSERT students VALUES (1)",
		"INSERT INTO t VALUES 1",
		"UPDATE t SET",
		"UPDATE t SET a 1",
		"DELETE t",
		"CREATE TABLE ()",
		"CREATE TABLE t",
		"ALTER TABLE t FROB x",
		"DROP TABLE",
		"SELECT * FROM t NATURAL",
		"SELECT * FROM RANGETABLE()",
		"SELECT RANGEVALUE() FROM t",
		"SELECT * FROM t WHERE a NOT 5",
		"SELECT a FROM t LIMIT x",
		"SELECT * FROM t; garbage",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestLiteralValues(t *testing.T) {
	sel := mustParse(t, "SELECT 42, 'text', TRUE, FALSE, NULL").(*SelectStmt)
	if sel.Columns[0].Expr.(*Literal).Value.Num != 42 {
		t.Error("number literal wrong")
	}
	if sel.Columns[1].Expr.(*Literal).Value.Kind != sheet.KindString {
		t.Error("string literal wrong")
	}
	if sel.Columns[2].Expr.(*Literal).Value.Bool != true {
		t.Error("TRUE literal wrong")
	}
	if sel.Columns[3].Expr.(*Literal).Value.Bool != false {
		t.Error("FALSE literal wrong")
	}
	if _, ok := sel.Columns[4].Expr.(*NullLiteral); !ok {
		t.Error("NULL literal wrong")
	}
}

func TestParseIndexDDLAndExplain(t *testing.T) {
	stmt, err := Parse("CREATE UNIQUE INDEX IF NOT EXISTS idx_year ON movies (year, title)")
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := stmt.(*CreateIndexStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if !ci.Unique || !ci.IfNotExists || ci.Name != "idx_year" || ci.Table != "movies" ||
		len(ci.Columns) != 2 || ci.Columns[0] != "year" || ci.Columns[1] != "title" {
		t.Fatalf("CreateIndexStmt = %+v", ci)
	}
	stmt, err = Parse("CREATE INDEX i ON t (c)")
	if err != nil {
		t.Fatal(err)
	}
	if ci := stmt.(*CreateIndexStmt); ci.Unique || ci.IfNotExists {
		t.Fatalf("plain CREATE INDEX = %+v", ci)
	}

	stmt, err = Parse("DROP INDEX IF EXISTS idx_year")
	if err != nil {
		t.Fatal(err)
	}
	di, ok := stmt.(*DropIndexStmt)
	if !ok || di.Name != "idx_year" || !di.IfExists {
		t.Fatalf("DropIndexStmt = %+v (%T)", stmt, stmt)
	}

	// DROP TABLE / CREATE TABLE still parse (the lookahead must not break them).
	if _, err := Parse("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}

	stmt, err = Parse("EXPLAIN SELECT * FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatalf("EXPLAIN wraps %T", ex.Stmt)
	}
	if _, err := Parse("EXPLAIN UPDATE t SET v = 1 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("CREATE INDEX ON t (c)"); err == nil {
		t.Fatal("nameless CREATE INDEX accepted")
	}
}
