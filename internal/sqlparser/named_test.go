package sqlparser

import (
	"reflect"
	"strings"
	"testing"
)

func TestNamedPlaceholders(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = :lo AND b BETWEEN :lo AND :hi")
	if err != nil {
		t.Fatal(err)
	}
	if got := NumPlaceholders(stmt); got != 2 {
		t.Fatalf("NumPlaceholders = %d, want 2 (repeated :lo shares a slot)", got)
	}
	if got, want := ParamNames(stmt), []string{"lo", "hi"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParamNames = %v, want %v", got, want)
	}
	// Repeated names resolve to the same slot index.
	idx := map[string][]int{}
	WalkStatementExprs(stmt, func(e Expr) {
		if p, ok := e.(*Placeholder); ok {
			idx[p.Name] = append(idx[p.Name], p.Index)
		}
	})
	if !reflect.DeepEqual(idx["lo"], []int{0, 0}) || !reflect.DeepEqual(idx["hi"], []int{1}) {
		t.Fatalf("slot indexes = %v", idx)
	}
}

func TestNamedPlaceholderCaseFolded(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = :ID AND b = :id")
	if err != nil {
		t.Fatal(err)
	}
	if got := NumPlaceholders(stmt); got != 1 {
		t.Fatalf("NumPlaceholders = %d, want 1 (:ID and :id are the same name)", got)
	}
}

func TestMixedPlaceholderStylesRejected(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t WHERE a = ? AND b = :b",
		"SELECT * FROM t WHERE a = :a AND b = ?",
	} {
		if _, err := Parse(sql); err == nil || !strings.Contains(err.Error(), "mix") {
			t.Errorf("%s: want mixing error, got %v", sql, err)
		}
	}
}

func TestNamedPlaceholdersResetAcrossScriptStatements(t *testing.T) {
	stmts, err := ParseMulti("SELECT * FROM t WHERE a = :x; SELECT * FROM t WHERE b = :y")
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range stmts {
		names := ParamNames(stmt)
		if len(names) != 1 || names[0] != []string{"x", "y"}[i] {
			t.Fatalf("stmt %d names = %v", i, names)
		}
	}
}

func TestColonOutsideNamedParamStillRejected(t *testing.T) {
	// A colon not followed immediately by an identifier stays an error in
	// expression position (range syntax lives inside RANGEVALUE arguments).
	if _, err := Parse("SELECT * FROM t WHERE a = : b"); err == nil {
		t.Fatal("want parse error for detached colon")
	}
}

func TestNamedPlaceholderKeywordName(t *testing.T) {
	// Keyword-shaped names are allowed: ':limit' lexes as a keyword token
	// but binds as a parameter name.
	stmt, err := Parse("SELECT * FROM t WHERE a = :limit")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ParamNames(stmt), []string{"limit"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ParamNames = %v, want %v", got, want)
	}
}
