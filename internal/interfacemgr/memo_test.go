package interfacemgr

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
)

// bookAccessor resolves RANGEVALUE against the test workbook (the core
// package provides the real implementation).
type bookAccessor struct{ book *sheet.Book }

func (a *bookAccessor) RangeValue(ref string) (sheet.Value, error) {
	name := a.book.SheetNames()[0]
	if i := strings.Index(ref, "!"); i >= 0 {
		name, ref = ref[:i], ref[i+1:]
	}
	sh, ok := a.book.Sheet(name)
	if !ok {
		return sheet.Empty(), fmt.Errorf("no sheet %q", name)
	}
	addr, err := sheet.ParseAddress(ref)
	if err != nil {
		return sheet.Empty(), err
	}
	return sh.Value(addr), nil
}

func (a *bookAccessor) RangeTable(string, bool) ([]string, [][]sheet.Value, error) {
	return nil, nil, fmt.Errorf("not supported in this test")
}

// TestQueryBindingMemoization: a DBSQL binding over table A must not
// re-execute when unrelated table B changes, must re-execute when A
// changes, and re-binding the same query with nothing changed at all must
// be a pure memo hit.
func TestQueryBindingMemoization(t *testing.T) {
	m, db, book := newFixture(t)
	if err := db.CreateTable("other", []catalog.Column{
		{Name: "id", Type: catalog.TypeNumber, PrimaryKey: true},
	}); err != nil {
		t.Fatal(err)
	}

	b, err := m.BindQuery("Sheet1", sheet.Addr(0, 5), "SELECT name FROM people ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	baseRefreshes := m.Stats().Refreshes
	baseHits := m.Stats().MemoHits

	// Unchanged inputs: an explicit refresh must be a memo hit.
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.MemoHits != baseHits+1 || s.Refreshes != baseRefreshes {
		t.Fatalf("refresh with unchanged inputs: hits %d->%d refreshes %d->%d",
			baseHits, s.MemoHits, baseRefreshes, s.Refreshes)
	}

	// A change to an unrelated table triggers the refresh-everything policy
	// but must be absorbed by the memo.
	if _, err := db.Insert("other", []sheet.Value{sheet.Number(1)}); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.MemoHits != baseHits+2 || s.Refreshes != baseRefreshes {
		t.Fatalf("unrelated change re-executed the query: %+v", s)
	}

	// A change to the referenced table must re-execute and re-spill.
	if _, err := db.Insert("people", []sheet.Value{sheet.Number(4), sheet.String_("dee"), sheet.Number(19)}); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Refreshes != baseRefreshes+1 {
		t.Fatalf("referenced-table change did not re-execute: %+v", s)
	}
	if got := val(t, book, "F5"); got.String() != "dee" {
		t.Fatalf("spill not updated after change: F5 = %q", got.String())
	}

	// And the refresh that followed is itself memoized again.
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Refreshes != baseRefreshes+1 {
		t.Fatalf("post-change refresh not memoized: %+v", s)
	}

	// Schema DDL (e.g. a new index) invalidates the memo once.
	if err := db.CreateIndex("pa", "people", []string{"age"}, false, false); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Refreshes != baseRefreshes+2 {
		t.Fatalf("schema change did not re-execute: %+v", s)
	}
}

// TestQueryBindingMemoSheetInputs: a binding whose query reads sheet cells
// re-executes when those cells change, and memoizes otherwise — even though
// its own spill bumps the version of the sheet it reads from.
func TestQueryBindingMemoSheetInputs(t *testing.T) {
	m, db, book := newFixture(t)
	session := db.NewSession(&bookAccessor{book: book})
	m.SetQueryRunner(func(sql string) (*sqlexec.Result, error) { return session.Query(sql) })
	sh, _ := book.Sheet("Sheet1")
	sh.SetCell(sheet.MustParseAddress("A10"), sheet.Cell{Value: sheet.Number(30)})

	b, err := m.BindQuery("Sheet1", sheet.Addr(0, 7),
		"SELECT name FROM people WHERE age > RANGEVALUE(A10) ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Stats().Refreshes
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Refreshes != base {
		t.Fatalf("self-sheet binding never memoizes: %+v", s)
	}
	// Changing the referenced cell must re-execute with the new parameter.
	sh.SetCell(sheet.MustParseAddress("A10"), sheet.Cell{Value: sheet.Number(20)})
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Refreshes != base+1 {
		t.Fatalf("cell change did not re-execute: %+v", s)
	}
	if got := val(t, book, "H4"); got.String() != "cy" {
		t.Fatalf("re-executed result wrong: H4 = %q", got.String())
	}
}

// TestQueryBindingSelfOverwritingSpillNeverMemoizes: a binding whose spill
// extent overlaps a sheet range its query reads rewrites its own inputs;
// memoizing it would pin the result computed from the pre-overwrite cells,
// so such bindings must re-execute on every refresh.
func TestQueryBindingSelfOverwritingSpillNeverMemoizes(t *testing.T) {
	m, db, book := newFixture(t)
	session := db.NewSession(&bookAccessor{book: book})
	m.SetQueryRunner(func(sql string) (*sqlexec.Result, error) { return session.Query(sql) })
	sh, _ := book.Sheet("Sheet1")
	sh.SetCell(sheet.MustParseAddress("A2"), sheet.Cell{Value: sheet.Number(20)})

	// Anchored at A1, the spill covers A1:A4 — including A2, which the
	// query reads.
	b, err := m.BindQuery("Sheet1", sheet.Addr(0, 0),
		"SELECT name FROM people WHERE age > RANGEVALUE(A2) ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	base := m.Stats()
	if err := m.RefreshBinding(b.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.MemoHits != base.MemoHits || s.Refreshes != base.Refreshes+1 {
		t.Fatalf("self-overwriting binding was memoized: %+v -> %+v", base, s)
	}
}
