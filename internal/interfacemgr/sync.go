package interfacemgr

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/compute"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// --- materialisation (database -> sheet) ---

// materializeTable writes a table binding's visible content onto the sheet:
// the header plus either every row (small tables) or only the rows that fall
// inside the current window (large tables).
func (m *Manager) materializeTable(b *Binding) error {
	sh, ok := m.book.Sheet(b.SheetName)
	if !ok {
		return fmt.Errorf("interfacemgr: unknown sheet %q", b.SheetName)
	}
	// Determine which display positions to materialise.
	startPos, count := 0, b.positions.Len()
	if b.WindowOnly && m.windows != nil {
		win := m.windows.Window(b.SheetName)
		// Data row at display position p lives at sheet row Anchor.Row+1+p.
		startPos = win.Start.Row - b.Anchor.Row - 1
		if startPos < 0 {
			startPos = 0
		}
		count = win.Rows() + 1 // a little slack below the window
	}
	// Clear the previously materialised extent.
	if b.hasExt {
		sh.ClearRange(b.extent)
	}
	var changed []compute.CellID
	// Header row.
	for c, name := range b.Columns {
		a := sheet.Addr(b.Anchor.Row, b.Anchor.Col+c)
		sh.SetCell(a, sheet.Cell{Value: sheet.String_(name), Origin: sheet.Origin{Kind: sheet.OriginTable, BindingID: b.ID}})
		changed = append(changed, compute.CellID{Sheet: b.SheetName, Addr: a})
		m.bumpCells(1)
	}
	maxRow := b.Anchor.Row
	maxCol := b.Anchor.Col + len(b.Columns) - 1
	// Data rows.
	written := 0
	b.positions.Scan(startPos, count, func(pos int, payload uint64) bool {
		row, err := m.db.Get(b.Table, tablestore.RowID(payload))
		if err != nil {
			return true
		}
		sheetRow := b.Anchor.Row + 1 + pos
		for c := range b.Columns {
			var v sheet.Value
			if c < len(row) {
				v = row[c]
			}
			a := sheet.Addr(sheetRow, b.Anchor.Col+c)
			sh.SetCell(a, sheet.Cell{Value: v, Origin: sheet.Origin{Kind: sheet.OriginTable, BindingID: b.ID}})
			changed = append(changed, compute.CellID{Sheet: b.SheetName, Addr: a})
		}
		if sheetRow > maxRow {
			maxRow = sheetRow
		}
		written++
		return true
	})
	m.bumpCells(uint64(written * len(b.Columns)))
	b.extent = sheet.RangeOf(b.Anchor.Row, b.Anchor.Col, maxRow, maxCol)
	b.hasExt = true
	m.mu.Lock()
	m.stats.Refreshes++
	m.mu.Unlock()
	if m.engine != nil && len(changed) > 0 {
		m.engine.NotifyChanged(changed...)
	}
	return nil
}

// refreshQuery re-executes a query binding and spills its result — unless
// the fingerprint of every input (schema epoch, referenced table data
// versions, referenced sheet versions) matches the previous successful
// refresh, in which case the spilled cells are already current and the
// execution is skipped outright.
func (m *Manager) refreshQuery(b *Binding) error {
	m.mu.Lock()
	runner := m.runQuery
	m.mu.Unlock()
	if runner == nil {
		return fmt.Errorf("interfacemgr: no query runner configured")
	}
	fp, memoable := m.fingerprintQuery(b.SQL)
	if memoable && b.hasExt && b.memo.equal(fp) {
		m.mu.Lock()
		m.stats.MemoHits++
		m.mu.Unlock()
		return nil
	}
	b.memo = nil
	res, err := runner(b.SQL)
	if err != nil {
		return err
	}
	sh, ok := m.book.Sheet(b.SheetName)
	if !ok {
		return fmt.Errorf("interfacemgr: unknown sheet %q", b.SheetName)
	}
	// The spill below overwrites every cell of the new extent, so only the
	// part of the old extent the new result no longer covers needs
	// clearing. A same-shaped refresh (the common recalculation case)
	// clears nothing.
	newExt := sheet.RangeOf(b.Anchor.Row, b.Anchor.Col,
		b.Anchor.Row+len(res.Rows), b.Anchor.Col+maxInt(len(res.Columns)-1, 0))
	if b.hasExt {
		var stale []sheet.Address
		sh.ForEachInRange(b.extent, func(a sheet.Address, _ sheet.Cell) {
			if !newExt.Contains(a) {
				stale = append(stale, a)
			}
		})
		for _, a := range stale {
			sh.Clear(a)
		}
	}
	b.Columns = res.Columns
	changed := make([]compute.CellID, 0, (len(res.Rows)+1)*len(res.Columns))
	origin := sheet.Origin{Kind: sheet.OriginQuery, BindingID: b.ID}
	sh.SetCellBatch(func(set func(sheet.Address, sheet.Cell)) {
		// Header.
		for c, name := range res.Columns {
			a := sheet.Addr(b.Anchor.Row, b.Anchor.Col+c)
			set(a, sheet.Cell{Value: sheet.String_(name), Origin: origin})
			changed = append(changed, compute.CellID{Sheet: b.SheetName, Addr: a})
		}
		// Result rows, computed collectively in a single pass
		// (set-at-a-time) rather than one formula per cell.
		for r, row := range res.Rows {
			for c := range res.Columns {
				var v sheet.Value
				if c < len(row) {
					v = row[c]
				}
				a := sheet.Addr(b.Anchor.Row+1+r, b.Anchor.Col+c)
				set(a, sheet.Cell{Value: v, Origin: origin})
				changed = append(changed, compute.CellID{Sheet: b.SheetName, Addr: a})
			}
		}
	})
	m.bumpCells(uint64(len(changed)))
	endRow := b.Anchor.Row + len(res.Rows)
	endCol := b.Anchor.Col + maxInt(len(res.Columns)-1, 0)
	b.extent = sheet.RangeOf(b.Anchor.Row, b.Anchor.Col, endRow, endCol)
	b.hasExt = true
	if memoable && !m.spillOverlapsInputs(b) {
		// Sheet versions are re-captured after the spill so the binding's
		// own writes (which bump the target sheet's version) do not defeat
		// the memo for queries reading ranges of the sheet they spill to.
		// A spill that overwrites its own input ranges is the exception:
		// it is never memoized, since the re-captured version would pin a
		// result computed from the pre-overwrite inputs.
		m.refreshSheetVersions(fp)
		b.memo = fp
	}
	m.mu.Lock()
	m.stats.Refreshes++
	m.mu.Unlock()
	if m.engine != nil && len(changed) > 0 {
		m.engine.NotifyChanged(changed...)
	}
	return nil
}

// RefreshBinding fully rematerialises a binding.
func (m *Manager) RefreshBinding(id int64) error {
	m.mu.Lock()
	b, ok := m.bindings[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("interfacemgr: no binding %d", id)
	}
	switch b.Kind {
	case KindTable:
		// Rebuild position index from the table (row count may have
		// changed).
		var ids []uint64
		if err := m.db.Scan(b.Table, func(rid tablestore.RowID, _ []sheet.Value) bool {
			ids = append(ids, uint64(rid))
			return true
		}); err != nil {
			return err
		}
		if err := b.positions.BulkLoad(ids); err != nil {
			return err
		}
		return m.materializeTable(b)
	default:
		return m.refreshQuery(b)
	}
}

// OnScroll rematerialises window-only table bindings of the sheet after the
// window moved (fetch-on-demand panning).
func (m *Manager) OnScroll(sheetName string) error {
	m.mu.Lock()
	var targets []*Binding
	for _, b := range m.bindings {
		if b.Kind == KindTable && b.WindowOnly && strings.EqualFold(b.SheetName, sheetName) {
			targets = append(targets, b)
		}
	}
	m.mu.Unlock()
	for _, b := range targets {
		if err := m.materializeTable(b); err != nil {
			return err
		}
	}
	return nil
}

func (m *Manager) bumpCells(n uint64) {
	m.mu.Lock()
	m.stats.CellsWritten += n
	m.mu.Unlock()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- sheet -> database (front-end edits) ---

// HandleSheetEdit routes a user edit at a bound cell to the database. It
// returns handled=false when the cell does not belong to any binding, in
// which case the caller treats it as ordinary sheet content. Edits to query
// results and to header cells are rejected.
func (m *Manager) HandleSheetEdit(sheetName string, a sheet.Address, v sheet.Value) (handled bool, err error) {
	b, ok := m.BindingAt(sheetName, a)
	if !ok {
		return false, nil
	}
	if b.Kind == KindQuery {
		return true, fmt.Errorf("interfacemgr: cells produced by DBSQL are read-only")
	}
	if a.Row == b.Anchor.Row {
		return true, fmt.Errorf("interfacemgr: the header row of a DBTABLE binding is read-only")
	}
	pos := a.Row - b.Anchor.Row - 1
	col := a.Col - b.Anchor.Col
	payload, ok := b.positions.Get(pos)
	if !ok {
		return true, fmt.Errorf("interfacemgr: no bound row at display position %d", pos)
	}
	if col < 0 || col >= len(b.Columns) {
		return true, fmt.Errorf("interfacemgr: column %d outside the bound table", col)
	}
	m.mu.Lock()
	m.suppress = true
	m.mu.Unlock()
	err = m.db.UpdateColumn(b.Table, tablestore.RowID(payload), col, v)
	m.mu.Lock()
	m.suppress = false
	m.stats.EditsPushed++
	m.mu.Unlock()
	if err != nil {
		return true, err
	}
	// Write the (possibly coerced) stored value back onto the sheet so the
	// display matches the database, and notify the compute engine.
	row, gerr := m.db.Get(b.Table, tablestore.RowID(payload))
	if gerr == nil && col < len(row) {
		if sh, found := m.book.Sheet(b.SheetName); found {
			sh.SetCell(a, sheet.Cell{Value: row[col], Origin: sheet.Origin{Kind: sheet.OriginTable, BindingID: b.ID}})
		}
		m.engine.NotifyChanged(compute.CellID{Sheet: b.SheetName, Addr: a})
	}
	// Other bindings over the same table refresh through onDBChange.
	m.refreshSiblings(b)
	return true, nil
}

// LocationOfKey maps a tuple's primary key to its current display location
// within a table binding (paper: "the interface manager maintains a mapping
// between a tuple's key attribute and its corresponding location").
func (m *Manager) LocationOfKey(bindingID int64, key []sheet.Value) (sheet.Address, bool, error) {
	b, ok := m.Binding(bindingID)
	if !ok || b.Kind != KindTable {
		return sheet.Address{}, false, fmt.Errorf("interfacemgr: no table binding %d", bindingID)
	}
	rid, found, err := m.db.FindByKey(b.Table, key)
	if err != nil || !found {
		return sheet.Address{}, false, err
	}
	pos, ok := b.positions.PositionOf(uint64(rid))
	if !ok {
		return sheet.Address{}, false, nil
	}
	return sheet.Addr(b.Anchor.Row+1+pos, b.Anchor.Col), true, nil
}

// --- database -> sheet (back-end changes) ---

// onDBChange reacts to database change notifications by keeping bound
// regions in sync. Inserts and updates are handled incrementally; deletes and
// schema changes trigger a full refresh of affected bindings.
func (m *Manager) onDBChange(ev sqlexec.ChangeEvent) {
	m.mu.Lock()
	var targets []*Binding
	for _, b := range m.bindings {
		if b.Kind == KindTable && strings.EqualFold(b.Table, ev.Table) {
			targets = append(targets, b)
		}
		if b.Kind == KindQuery && ev.Kind != sqlexec.ChangeSchema {
			// Query results may depend on any table; re-run them on data
			// changes. (A more precise dependency analysis could limit
			// this to queries that reference ev.Table.)
			targets = append(targets, b)
		}
	}
	m.mu.Unlock()
	for _, b := range targets {
		switch {
		case b.Kind == KindQuery:
			_ = m.refreshQuery(b)
		case ev.Kind == sqlexec.ChangeInsert:
			m.applyInsert(b, ev.RowID)
		case ev.Kind == sqlexec.ChangeUpdate:
			m.applyUpdate(b, ev.RowID)
		case ev.Kind == sqlexec.ChangeDelete:
			_ = m.RefreshBinding(b.ID)
		case ev.Kind == sqlexec.ChangeDropTable:
			m.Unbind(b.ID)
		default: // schema change
			b.Columns = nil
			if tbl, err := m.db.Table(b.Table); err == nil {
				b.Columns = tbl.ColumnNames()
			}
			_ = m.RefreshBinding(b.ID)
		}
	}
}

// applyInsert appends the new row at the end of the binding.
func (m *Manager) applyInsert(b *Binding, id tablestore.RowID) {
	if _, exists := b.positions.PositionOf(uint64(id)); exists {
		return
	}
	_ = b.positions.Append(uint64(id))
	pos := b.positions.Len() - 1
	m.mu.Lock()
	m.stats.IncrementalOps++
	m.mu.Unlock()
	if b.WindowOnly && m.windows != nil {
		if !m.windows.Contains(b.SheetName, sheet.Addr(b.Anchor.Row+1+pos, b.Anchor.Col)) {
			return // not visible; will be materialised when scrolled to
		}
	}
	m.writeRow(b, pos, id)
}

// applyUpdate rewrites the cells of the updated row if it is materialised.
func (m *Manager) applyUpdate(b *Binding, id tablestore.RowID) {
	pos, ok := b.positions.PositionOf(uint64(id))
	if !ok {
		return
	}
	m.mu.Lock()
	m.stats.IncrementalOps++
	m.mu.Unlock()
	if b.WindowOnly && m.windows != nil {
		if !m.windows.Contains(b.SheetName, sheet.Addr(b.Anchor.Row+1+pos, b.Anchor.Col)) {
			return
		}
	}
	m.writeRow(b, pos, id)
}

// writeRow materialises one data row of a table binding.
func (m *Manager) writeRow(b *Binding, pos int, id tablestore.RowID) {
	sh, ok := m.book.Sheet(b.SheetName)
	if !ok {
		return
	}
	row, err := m.db.Get(b.Table, id)
	if err != nil {
		return
	}
	sheetRow := b.Anchor.Row + 1 + pos
	var changed []compute.CellID
	for c := range b.Columns {
		var v sheet.Value
		if c < len(row) {
			v = row[c]
		}
		a := sheet.Addr(sheetRow, b.Anchor.Col+c)
		sh.SetCell(a, sheet.Cell{Value: v, Origin: sheet.Origin{Kind: sheet.OriginTable, BindingID: b.ID}})
		changed = append(changed, compute.CellID{Sheet: b.SheetName, Addr: a})
	}
	m.bumpCells(uint64(len(b.Columns)))
	if sheetRow > b.extent.End.Row {
		b.extent.End.Row = sheetRow
	}
	if m.engine != nil {
		m.engine.NotifyChanged(changed...)
	}
}

// refreshSiblings refreshes other table bindings bound to the same table as
// b (after a front-end edit routed through b).
func (m *Manager) refreshSiblings(b *Binding) {
	m.mu.Lock()
	var targets []*Binding
	for _, other := range m.bindings {
		if other.ID != b.ID && other.Kind == KindTable && strings.EqualFold(other.Table, b.Table) {
			targets = append(targets, other)
		}
	}
	m.mu.Unlock()
	for _, other := range targets {
		_ = m.RefreshBinding(other.ID)
	}
}
