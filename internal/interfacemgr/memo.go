package interfacemgr

import (
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// Result-level memoization for DBSQL bindings. A query binding's output is a
// pure function of the database schema, the data of every table it reads,
// and the sheet cells its positional constructs reference. PR 2 gave all of
// those cheap version counters (schema epoch, per-table data versions,
// per-sheet versions), so a refresh first captures a fingerprint of them and
// skips re-execution — and re-spilling — entirely when it matches the
// fingerprint of the previous successful refresh. This is what keeps the
// interface manager's refresh-on-any-change policy affordable: a change to
// one table no longer re-runs every unrelated DBSQL binding in the workbook.

// queryFingerprint is the captured version vector of one query execution.
type queryFingerprint struct {
	schemaEpoch uint64
	tables      map[string]uint64
	sheets      map[string]uint64
}

func (f *queryFingerprint) equal(o *queryFingerprint) bool {
	if f == nil || o == nil || f.schemaEpoch != o.schemaEpoch ||
		len(f.tables) != len(o.tables) || len(f.sheets) != len(o.sheets) {
		return false
	}
	for name, v := range f.tables {
		if ov, ok := o.tables[name]; !ok || ov != v {
			return false
		}
	}
	for name, v := range f.sheets {
		if ov, ok := o.sheets[name]; !ok || ov != v {
			return false
		}
	}
	return true
}

// fingerprintQuery captures the current versions of every input of a query
// binding's SQL. ok is false when the statement is not a memoizable pure
// SELECT (DML/DDL through DBSQL always re-executes) or when a referenced
// sheet does not exist.
func (m *Manager) fingerprintQuery(sql string) (fp *queryFingerprint, ok bool) {
	p, err := m.db.Prepare(sql)
	if err != nil {
		return nil, false
	}
	sel, isSelect := p.Statement().(*sqlparser.SelectStmt)
	if !isSelect {
		return nil, false
	}
	fp = &queryFingerprint{
		schemaEpoch: m.db.SchemaEpoch(),
		tables:      make(map[string]uint64),
		sheets:      make(map[string]uint64),
	}
	for _, name := range tableRefsOfSelect(sel) {
		fp.tables[name] = m.db.TableDataVersion(name)
	}
	for _, ref := range m.sheetRefsOfSQL(sql) {
		name := ref.Sheet
		if name == "" {
			names := m.book.SheetNames()
			if len(names) == 0 {
				return nil, false
			}
			name = names[0]
		}
		sh, canonical, found := m.sheetByName(name)
		if !found {
			return nil, false
		}
		fp.sheets[canonical] = sh.Version()
	}
	return fp, true
}

// sheetByName resolves a (possibly differently-cased) sheet name to the
// sheet and its canonical name.
func (m *Manager) sheetByName(name string) (*sheet.Sheet, string, bool) {
	if sh, ok := m.book.Sheet(name); ok {
		return sh, name, true
	}
	for _, n := range m.book.SheetNames() {
		if strings.EqualFold(n, name) {
			sh, ok := m.book.Sheet(n)
			return sh, n, ok
		}
	}
	return nil, "", false
}

// refreshSheetVersions re-reads the sheet entries of a fingerprint. It is
// called after the spill, whose own cell writes bump the target sheet's
// version: a binding that reads ranges of the sheet it spills to would
// otherwise never see its fingerprint match.
func (m *Manager) refreshSheetVersions(fp *queryFingerprint) {
	for name := range fp.sheets {
		if sh, _, found := m.sheetByName(name); found {
			fp.sheets[name] = sh.Version()
		}
	}
}

// spillOverlapsInputs reports whether the binding's materialised extent
// intersects any sheet range its query reads. Such a binding rewrites its
// own inputs: memoizing it would pin the pre-overwrite result, so it is
// never memoized (the pre-memo behavior — re-execute until convergence —
// is preserved).
func (m *Manager) spillOverlapsInputs(b *Binding) bool {
	if !b.hasExt {
		return false
	}
	for _, ref := range m.sheetRefsOfSQL(b.SQL) {
		name := ref.Sheet
		if name == "" {
			names := m.book.SheetNames()
			if len(names) == 0 {
				continue
			}
			name = names[0]
		}
		if strings.EqualFold(name, b.SheetName) && b.extent.Intersects(ref.Range.Normalize()) {
			return true
		}
	}
	return false
}

// tableRefsOfSelect collects the lower-cased names of every named table a
// SELECT reads, sub-selects included.
func tableRefsOfSelect(sel *sqlparser.SelectStmt) []string {
	seen := make(map[string]bool)
	var walkTable func(t sqlparser.TableRef)
	walkTable = func(t sqlparser.TableRef) {
		switch x := t.(type) {
		case *sqlparser.TableName:
			seen[strings.ToLower(x.Name)] = true
		case *sqlparser.SubSelect:
			walkSelect(x.Select, func(sqlparser.Expr) {}, walkTable)
		}
	}
	walkSelect(sel, func(sqlparser.Expr) {}, walkTable)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	return out
}
