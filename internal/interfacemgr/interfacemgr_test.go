package interfacemgr

import (
	"testing"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/compute"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/window"
)

// newFixture builds a manager over a small database and workbook. The query
// runner executes SQL without a sheet accessor (sufficient for these tests;
// the core package tests cover RANGEVALUE/RANGETABLE-dependent queries).
func newFixture(t *testing.T) (*Manager, *sqlexec.Database, *sheet.Book) {
	t.Helper()
	db := sqlexec.NewDatabase(sqlexec.Config{})
	book := sheet.NewBook()
	book.AddSheet("Sheet1")
	engine := compute.New(book)
	windows := window.NewManager(20, 6)
	engine.SetVisibleProvider(windows.Visible)
	m := New(db, book, engine, windows)
	session := db.NewSession(nil)
	m.SetQueryRunner(func(sql string) (*sqlexec.Result, error) { return session.Query(sql) })

	if err := db.CreateTable("people", []catalog.Column{
		{Name: "id", Type: catalog.TypeNumber, PrimaryKey: true},
		{Name: "name", Type: catalog.TypeText},
		{Name: "age", Type: catalog.TypeNumber},
	}); err != nil {
		t.Fatal(err)
	}
	rows := [][]any{{1, "ann", 30}, {2, "bo", 41}, {3, "cy", 25}}
	for _, r := range rows {
		vals := make([]sheet.Value, len(r))
		for i, x := range r {
			vals[i] = sheet.FromAny(x)
		}
		if _, err := db.Insert("people", vals); err != nil {
			t.Fatal(err)
		}
	}
	return m, db, book
}

func val(t *testing.T, b *sheet.Book, ref string) sheet.Value {
	t.Helper()
	sh, _ := b.Sheet("Sheet1")
	return sh.Value(sheet.MustParseAddress(ref))
}

func TestBindTableMaterialisesAndTracksPositions(t *testing.T) {
	m, db, book := newFixture(t)
	b, err := m.BindTable("Sheet1", sheet.Addr(0, 0), "people")
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != KindTable || b.RowCount() != 3 || b.WindowOnly {
		t.Fatalf("binding = %+v", b)
	}
	if val(t, book, "A1").Str != "id" || val(t, book, "B2").Str != "ann" || val(t, book, "C4").Num != 25 {
		t.Error("materialised content wrong")
	}
	ext, ok := b.Extent()
	if !ok || ext != sheet.RangeOf(0, 0, 3, 2) {
		t.Errorf("extent = %v %v", ext, ok)
	}
	// BindingAt finds it; LocationOfKey maps keys to sheet rows.
	if got, ok := m.BindingAt("sheet1", sheet.Addr(2, 1)); !ok || got.ID != b.ID {
		t.Error("BindingAt failed")
	}
	loc, found, err := m.LocationOfKey(b.ID, []sheet.Value{sheet.Number(2)})
	if err != nil || !found || loc != sheet.Addr(2, 0) {
		t.Errorf("LocationOfKey = %v %v %v", loc, found, err)
	}
	if _, found, _ := m.LocationOfKey(b.ID, []sheet.Value{sheet.Number(99)}); found {
		t.Error("missing key should not be located")
	}
	// Binding to a missing table fails; stats accumulate.
	if _, err := m.BindTable("Sheet1", sheet.Addr(0, 10), "missing"); err == nil {
		t.Error("binding a missing table should fail")
	}
	if m.Stats().CellsWritten == 0 || m.Stats().Refreshes == 0 {
		t.Error("stats should be recorded")
	}
	_ = db
}

func TestSheetEditRoutesToDatabase(t *testing.T) {
	m, db, book := newFixture(t)
	b, err := m.BindTable("Sheet1", sheet.Addr(0, 0), "people")
	if err != nil {
		t.Fatal(err)
	}
	// Edit bo's age (row 3 on the sheet, column C).
	handled, err := m.HandleSheetEdit("Sheet1", sheet.MustParseAddress("C3"), sheet.Number(50))
	if !handled || err != nil {
		t.Fatalf("edit = %v %v", handled, err)
	}
	row, err := db.Get("people", 2)
	if err != nil || row[2].Num != 50 {
		t.Fatalf("database row = %v %v", row, err)
	}
	if val(t, book, "C3").Num != 50 {
		t.Error("sheet cell should reflect the stored value")
	}
	// Header edits and out-of-binding edits.
	if handled, err := m.HandleSheetEdit("Sheet1", sheet.MustParseAddress("A1"), sheet.Number(1)); !handled || err == nil {
		t.Error("header edit should be handled with an error")
	}
	if handled, _ := m.HandleSheetEdit("Sheet1", sheet.MustParseAddress("Z99"), sheet.Number(1)); handled {
		t.Error("edit outside any binding should not be handled")
	}
	if m.Stats().EditsPushed != 1 {
		t.Errorf("EditsPushed = %d", m.Stats().EditsPushed)
	}
	_ = b
}

func TestDBChangesRefreshBinding(t *testing.T) {
	m, db, book := newFixture(t)
	if _, err := m.BindTable("Sheet1", sheet.Addr(0, 0), "people"); err != nil {
		t.Fatal(err)
	}
	// Back-end update.
	if err := db.UpdateColumn("people", 1, 2, sheet.Number(31)); err != nil {
		t.Fatal(err)
	}
	if val(t, book, "C2").Num != 31 {
		t.Error("update not reflected")
	}
	// Back-end insert appends.
	if _, err := db.Insert("people", []sheet.Value{sheet.Number(4), sheet.String_("di"), sheet.Number(22)}); err != nil {
		t.Fatal(err)
	}
	if val(t, book, "B5").Str != "di" {
		t.Error("insert not appended")
	}
	// Back-end delete triggers a full refresh that compacts rows.
	if err := db.Delete("people", 1); err != nil {
		t.Fatal(err)
	}
	if val(t, book, "B2").Str != "bo" || !val(t, book, "B5").IsEmpty() {
		t.Errorf("delete refresh wrong: B2=%v B5=%v", val(t, book, "B2"), val(t, book, "B5"))
	}
	// Schema change adds the new column to the header.
	if err := db.AddColumn("people", catalog.Column{Name: "city", Type: catalog.TypeText}, sheet.String_("urbana")); err != nil {
		t.Fatal(err)
	}
	if val(t, book, "D1").Str != "city" || val(t, book, "D2").Str != "urbana" {
		t.Error("schema change not reflected")
	}
	// Dropping the table removes the binding and its cells.
	if err := db.DropTable("people"); err != nil {
		t.Fatal(err)
	}
	if len(m.Bindings()) != 0 {
		t.Error("binding should be removed when its table is dropped")
	}
	if !val(t, book, "A1").IsEmpty() {
		t.Error("cells should be cleared when the table is dropped")
	}
}

func TestQueryBindingRefreshOnDataChange(t *testing.T) {
	m, db, book := newFixture(t)
	b, err := m.BindQuery("Sheet1", sheet.MustParseAddress("F1"), "SELECT COUNT(*) AS n, SUM(age) AS total FROM people")
	if err != nil {
		t.Fatal(err)
	}
	if val(t, book, "F1").Str != "n" || val(t, book, "F2").Num != 3 || val(t, book, "G2").Num != 96 {
		t.Errorf("query binding content wrong: %v %v %v", val(t, book, "F1"), val(t, book, "F2"), val(t, book, "G2"))
	}
	// A data change re-runs the query.
	if _, err := db.Insert("people", []sheet.Value{sheet.Number(9), sheet.String_("zz"), sheet.Number(4)}); err != nil {
		t.Fatal(err)
	}
	if val(t, book, "F2").Num != 4 || val(t, book, "G2").Num != 100 {
		t.Errorf("query binding not refreshed: %v %v", val(t, book, "F2"), val(t, book, "G2"))
	}
	// Query bindings are read-only.
	if handled, err := m.HandleSheetEdit("Sheet1", sheet.MustParseAddress("F2"), sheet.Number(0)); !handled || err == nil {
		t.Error("editing a query binding should be rejected")
	}
	// Unbind clears cells and stops refreshes.
	m.Unbind(b.ID)
	if !val(t, book, "F1").IsEmpty() {
		t.Error("unbind should clear cells")
	}
	// Errors: bad SQL, no runner.
	if _, err := m.BindQuery("Sheet1", sheet.Addr(20, 0), "SELECT * FROM missing"); err == nil {
		t.Error("query binding with bad SQL should fail")
	}
	m.SetQueryRunner(nil)
	if _, err := m.BindQuery("Sheet1", sheet.Addr(20, 0), "SELECT 1"); err == nil {
		t.Error("query binding without a runner should fail")
	}
}

func TestWindowOnlyBindingScrolling(t *testing.T) {
	m, db, book := newFixture(t)
	m.SetMaterializeAllLimit(10)
	if err := db.CreateTable("big", []catalog.Column{
		{Name: "id", Type: catalog.TypeNumber, PrimaryKey: true},
		{Name: "v", Type: catalog.TypeNumber},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Insert("big", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 2))}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := m.BindTable("Sheet1", sheet.Addr(0, 4), "big")
	if err != nil {
		t.Fatal(err)
	}
	if !b.WindowOnly {
		t.Fatal("expected a window-only binding")
	}
	sh, _ := book.Sheet("Sheet1")
	if sh.CellCount() > 100 {
		t.Errorf("window-only binding materialised %d cells", sh.CellCount())
	}
	// Scroll down; the new window region gets filled from the database.
	m.windows.ScrollTo("Sheet1", sheet.Addr(300, 4))
	if err := m.OnScroll("Sheet1"); err != nil {
		t.Fatal(err)
	}
	if v := sh.Value(sheet.Addr(305, 4)); v.Num != 304 {
		t.Errorf("scrolled window content = %v", v)
	}
	if sh.CellCount() > 120 {
		t.Errorf("after scroll still only a window should be materialised, got %d cells", sh.CellCount())
	}
}
