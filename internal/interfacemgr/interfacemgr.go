// Package interfacemgr implements the paper's interface manager: the
// component that makes the database aware of the spreadsheet interface. It
// assigns every piece of relational data displayed on a sheet a *context*
// (sheet + positional address), maintains the mapping between tuple keys /
// row ids and display positions through the positional index, and drives
// two-way synchronisation: edits on bound cells become database updates, and
// database changes refresh the bound regions (paper Feature 3).
//
// Two binding kinds exist, mirroring the paper's constructs:
//
//   - Table bindings (DBTABLE): a sheet region two-way bound to a relational
//     table. Large tables are materialised window-by-window as the user
//     pans; small tables are materialised in full.
//   - Query bindings (DBSQL): the read-only result of an arbitrary SQL query
//     spilled into a region, re-executed when the database or the sheet
//     cells it references change.
package interfacemgr

import (
	"fmt"
	"strings"
	"sync"

	"github.com/dataspread/dataspread/internal/compute"
	"github.com/dataspread/dataspread/internal/formula"
	"github.com/dataspread/dataspread/internal/index/positional"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/sqlparser"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
	"github.com/dataspread/dataspread/internal/window"
)

// DefaultMaterializeAllLimit is the row count up to which a table binding is
// materialised in full; larger tables are materialised window-by-window.
const DefaultMaterializeAllLimit = 5000

// Kind distinguishes table bindings from query bindings.
type Kind int

// Binding kinds.
const (
	KindTable Kind = iota
	KindQuery
)

// QueryRunner executes a SQL string against the engine with the spreadsheet
// accessor attached (provided by the core package).
type QueryRunner func(sql string) (*sqlexec.Result, error)

// Binding is one bound region on a sheet.
type Binding struct {
	ID        int64
	Kind      Kind
	SheetName string
	Anchor    sheet.Address
	// Table is the bound table name (table bindings).
	Table string
	// SQL is the query text (query bindings).
	SQL string
	// Columns are the displayed column names (header row).
	Columns []string
	// WindowOnly is true when the binding materialises only the visible
	// window (large tables).
	WindowOnly bool

	// positions maps display position (0-based data row) to RowID for
	// table bindings.
	positions *positional.Index
	// memo is the input fingerprint of the last successful refresh of a
	// query binding; a matching fingerprint skips re-execution (memo.go).
	memo *queryFingerprint
	// extent is the sheet region currently materialised (header included).
	extent sheet.Range
	hasExt bool
}

// Extent returns the currently materialised region and whether any cells are
// materialised.
func (b *Binding) Extent() (sheet.Range, bool) { return b.extent, b.hasExt }

// RowCount returns the number of data rows tracked by a table binding.
func (b *Binding) RowCount() int {
	if b.positions == nil {
		return 0
	}
	return b.positions.Len()
}

// Stats counts interface-manager activity for experiments.
type Stats struct {
	CellsWritten   uint64 // cells materialised onto sheets
	Refreshes      uint64 // full binding refreshes
	IncrementalOps uint64 // incremental row-level refreshes
	EditsPushed    uint64 // sheet edits translated to database updates
	MemoHits       uint64 // query refreshes skipped: inputs unchanged (memo.go)
}

// Manager owns all bindings of a workbook.
type Manager struct {
	mu        sync.Mutex
	db        *sqlexec.Database
	book      *sheet.Book
	engine    *compute.Engine
	windows   *window.Manager
	runQuery  QueryRunner
	bindings  map[int64]*Binding
	nextID    int64
	allLimit  int
	stats     Stats
	suppress  bool // true while the manager itself writes to the database
	listening bool
	unlisten  func() // cancels the database change subscription
}

// New creates an interface manager. SetQueryRunner must be called before
// query bindings are used.
func New(db *sqlexec.Database, book *sheet.Book, engine *compute.Engine, windows *window.Manager) *Manager {
	m := &Manager{
		db:       db,
		book:     book,
		engine:   engine,
		windows:  windows,
		bindings: make(map[int64]*Binding),
		nextID:   1,
		allLimit: DefaultMaterializeAllLimit,
	}
	m.unlisten = db.Listen(m.onDBChange)
	m.listening = true
	return m
}

// Close detaches the manager from the database's change feed. Bindings stop
// refreshing; the manager is not usable afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.unlisten != nil {
		m.unlisten()
		m.unlisten = nil
		m.listening = false
	}
}

// SetQueryRunner installs the SQL runner used by query bindings.
func (m *Manager) SetQueryRunner(fn QueryRunner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runQuery = fn
}

// SetMaterializeAllLimit overrides the full-materialisation threshold.
func (m *Manager) SetMaterializeAllLimit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.allLimit = n
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Bindings returns all bindings.
func (m *Manager) Bindings() []*Binding {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Binding, 0, len(m.bindings))
	for _, b := range m.bindings {
		out = append(out, b)
	}
	return out
}

// Binding returns the binding with the given id.
func (m *Manager) Binding(id int64) (*Binding, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.bindings[id]
	return b, ok
}

// BindingAt returns the binding whose materialised extent contains the cell.
func (m *Manager) BindingAt(sheetName string, a sheet.Address) (*Binding, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.bindings {
		if strings.EqualFold(b.SheetName, sheetName) && b.hasExt && b.extent.Contains(a) {
			return b, true
		}
	}
	return nil, false
}

// Unbind removes a binding and clears its materialised cells.
func (m *Manager) Unbind(id int64) {
	m.mu.Lock()
	b, ok := m.bindings[id]
	if ok {
		delete(m.bindings, id)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	m.engine.UnregisterExternal(externalKey(id))
	if sh, found := m.book.Sheet(b.SheetName); found && b.hasExt {
		sh.ClearRange(b.extent)
	}
}

func externalKey(id int64) string { return fmt.Sprintf("binding-%d", id) }

// --- binding creation ---

// BindTable creates a DBTABLE binding: the table's contents appear at the
// anchor with a header row, kept in two-way sync with the database.
func (m *Manager) BindTable(sheetName string, anchor sheet.Address, table string) (*Binding, error) {
	tbl, err := m.db.Table(table)
	if err != nil {
		return nil, err
	}
	rowCount, err := m.db.RowCount(table)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	b := &Binding{
		ID:         m.nextID,
		Kind:       KindTable,
		SheetName:  sheetName,
		Anchor:     anchor,
		Table:      tbl.Name,
		Columns:    tbl.ColumnNames(),
		WindowOnly: rowCount > m.allLimit,
		positions:  positional.New(),
	}
	m.nextID++
	m.bindings[b.ID] = b
	m.mu.Unlock()

	// Build the positional index: display order is RowID order.
	ids := make([]uint64, 0, rowCount)
	if err := m.db.Scan(table, func(id tablestore.RowID, _ []sheet.Value) bool {
		ids = append(ids, uint64(id))
		return true
	}); err != nil {
		return nil, err
	}
	if err := b.positions.BulkLoad(ids); err != nil {
		return nil, err
	}
	if err := m.materializeTable(b); err != nil {
		return nil, err
	}
	return b, nil
}

// BindQuery creates a DBSQL binding: the query result is spilled at the
// anchor and refreshed when its inputs change. Re-entering the same query
// at the same anchor — the DBSQL recalculation pattern — reuses the
// existing binding and only refreshes it; a different formula at the anchor
// replaces the binding there.
func (m *Manager) BindQuery(sheetName string, anchor sheet.Address, sql string) (*Binding, error) {
	m.mu.Lock()
	runner := m.runQuery
	m.mu.Unlock()
	if runner == nil {
		return nil, fmt.Errorf("interfacemgr: no query runner configured")
	}
	if prev := m.bindingAt(sheetName, anchor); prev != nil {
		if prev.Kind == KindQuery && prev.SQL == sql {
			if err := m.refreshQuery(prev); err != nil {
				return nil, err
			}
			return prev, nil
		}
		m.Unbind(prev.ID)
	}
	m.mu.Lock()
	b := &Binding{
		ID:        m.nextID,
		Kind:      KindQuery,
		SheetName: sheetName,
		Anchor:    anchor,
		SQL:       sql,
	}
	m.nextID++
	m.bindings[b.ID] = b
	m.mu.Unlock()

	// Register sheet dependencies (RANGEVALUE / RANGETABLE references) so
	// the query re-runs when those cells change.
	if refs := m.sheetRefsOfSQL(sql); len(refs) > 0 {
		id := b.ID
		m.engine.RegisterExternal(externalKey(b.ID), refs, sheetName, func() {
			_ = m.RefreshBinding(id)
		})
	}
	if err := m.refreshQuery(b); err != nil {
		m.Unbind(b.ID)
		return nil, err
	}
	return b, nil
}

// bindingAt returns the binding anchored at the given cell, if any.
func (m *Manager) bindingAt(sheetName string, anchor sheet.Address) *Binding {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.bindings {
		if b.SheetName == sheetName && b.Anchor == anchor {
			return b
		}
	}
	return nil
}

// sheetRefsOfSQL extracts the sheet ranges a SQL text reads through
// RANGEVALUE/RANGETABLE. Parsing goes through the database's prepared-plan
// cache, so rebinding a recalculated DBSQL formula does not re-parse.
func (m *Manager) sheetRefsOfSQL(sql string) []formula.Reference {
	p, err := m.db.Prepare(sql)
	if err != nil {
		return nil
	}
	stmt := p.Statement()
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil
	}
	var refs []formula.Reference
	addRef := func(refText string) {
		sheetName, rangeText := splitSheetRef(refText)
		r, err := sheet.ParseRange(rangeText)
		if err != nil {
			return
		}
		refs = append(refs, formula.Reference{Sheet: sheetName, Range: r})
	}
	var walkExpr func(e sqlparser.Expr)
	walkExpr = func(e sqlparser.Expr) {
		switch x := e.(type) {
		case *sqlparser.RangeValueExpr:
			addRef(x.Ref)
		case *sqlparser.BinaryExpr:
			walkExpr(x.Left)
			walkExpr(x.Right)
		case *sqlparser.UnaryExpr:
			walkExpr(x.X)
		case *sqlparser.FuncCall:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *sqlparser.InExpr:
			walkExpr(x.X)
			for _, a := range x.List {
				walkExpr(a)
			}
		case *sqlparser.BetweenExpr:
			walkExpr(x.X)
			walkExpr(x.Lo)
			walkExpr(x.Hi)
		case *sqlparser.LikeExpr:
			walkExpr(x.X)
			walkExpr(x.Pattern)
		case *sqlparser.IsNullExpr:
			walkExpr(x.X)
		case *sqlparser.CaseExpr:
			walkExpr(x.Operand)
			for _, w := range x.Whens {
				walkExpr(w.When)
				walkExpr(w.Then)
			}
			walkExpr(x.Else)
		}
	}
	var walkTable func(t sqlparser.TableRef)
	walkTable = func(t sqlparser.TableRef) {
		switch x := t.(type) {
		case *sqlparser.RangeTableRef:
			addRef(x.Ref)
		case *sqlparser.SubSelect:
			walkSelect(x.Select, walkExpr, walkTable)
		}
	}
	walkSelect(sel, walkExpr, walkTable)
	return refs
}

func walkSelect(sel *sqlparser.SelectStmt, walkExpr func(sqlparser.Expr), walkTable func(sqlparser.TableRef)) {
	for _, item := range sel.Columns {
		if item.Expr != nil {
			walkExpr(item.Expr)
		}
	}
	if sel.From != nil {
		walkTable(sel.From)
	}
	for _, j := range sel.Joins {
		walkTable(j.Table)
		if j.On != nil {
			walkExpr(j.On)
		}
	}
	if sel.Where != nil {
		walkExpr(sel.Where)
	}
	for _, g := range sel.GroupBy {
		walkExpr(g)
	}
	if sel.Having != nil {
		walkExpr(sel.Having)
	}
	for _, o := range sel.OrderBy {
		walkExpr(o.Expr)
	}
}

// splitSheetRef splits "Sheet2!A1:B5" into its sheet and range parts.
func splitSheetRef(ref string) (sheetName, rangeText string) {
	if i := strings.Index(ref, "!"); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return "", ref
}
