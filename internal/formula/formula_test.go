package formula

import (
	"strings"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

// mapSource is a DataSource backed by sheets of plain maps.
type mapSource struct {
	sheets map[string]map[sheet.Address]sheet.Value
	def    string // default sheet name
}

func newMapSource() *mapSource {
	return &mapSource{sheets: map[string]map[sheet.Address]sheet.Value{}, def: "Sheet1"}
}

func (m *mapSource) set(sheetName, ref string, v sheet.Value) {
	if sheetName == "" {
		sheetName = m.def
	}
	if m.sheets[sheetName] == nil {
		m.sheets[sheetName] = map[sheet.Address]sheet.Value{}
	}
	m.sheets[sheetName][sheet.MustParseAddress(ref)] = v
}

func (m *mapSource) CellValue(sheetName string, a sheet.Address) sheet.Value {
	if sheetName == "" {
		sheetName = m.def
	}
	return m.sheets[sheetName][a]
}

func (m *mapSource) RangeValues(sheetName string, r sheet.Range) [][]sheet.Value {
	out := make([][]sheet.Value, r.Rows())
	for i := range out {
		out[i] = make([]sheet.Value, r.Cols())
		for j := range out[i] {
			out[i][j] = m.CellValue(sheetName, sheet.Addr(r.Start.Row+i, r.Start.Col+j))
		}
	}
	return out
}

func evalStr(t *testing.T, src string, data DataSource) sheet.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Eval(e, &Env{Sheet: "Sheet1", Data: data})
}

func TestParseAndEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"=1+2*3", 7},
		{"(1+2)*3", 9},
		{"=2^3^2", 512}, // right associative
		{"=-3+10", 7},
		{"=10/4", 2.5},
		{"=50%", 0.5},
		{"=200%*10", 20},
		{"=ROUND(3.14159, 2)", 3.14},
		{"=MOD(10, 3)", 1},
		{"=ABS(-4)+SQRT(9)", 7},
		{"=1e2+0.5", 100.5},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, nil)
		if got.Kind != sheet.KindNumber || got.Num != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalComparisonAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`=1 < 2`, true},
		{`=2 <= 1`, false},
		{`="abc" = "ABC"`, true},
		{`="a" <> "b"`, true},
		{`=IF(3>2, TRUE, FALSE)`, true},
		{`=AND(TRUE, 1, "TRUE")`, true},
		{`=AND(TRUE, FALSE)`, false},
		{`=OR(FALSE, 0, 1)`, true},
		{`=NOT(FALSE)`, true},
		{`=ISBLANK("x")`, false},
		{`=ISNUMBER(3)`, true},
		{`=ISERROR(1/0)`, true},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, nil)
		b, ok := got.AsBool()
		if !ok || b != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalStringsAndErrors(t *testing.T) {
	if got := evalStr(t, `="Hello, " & "World"`, nil); got.Str != "Hello, World" {
		t.Errorf("concat = %v", got)
	}
	if got := evalStr(t, `=UPPER("abc") & LOWER("DEF")`, nil); got.Str != "ABCdef" {
		t.Errorf("case funcs = %v", got)
	}
	if got := evalStr(t, `=LEFT("dataspread", 4) & "-" & RIGHT("dataspread", 6) & MID("abcdef", 2, 3)`, nil); got.Str != "data-spreadbcd" {
		t.Errorf("substring funcs = %v", got)
	}
	if got := evalStr(t, `=LEN(TRIM("  ab  "))`, nil); got.Num != 2 {
		t.Errorf("LEN/TRIM = %v", got)
	}
	if got := evalStr(t, `=1/0`, nil); got.Err != "#DIV/0!" {
		t.Errorf("div0 = %v", got)
	}
	if got := evalStr(t, `=NOSUCHFUNC(1)`, nil); got.Err != "#NAME?" {
		t.Errorf("unknown func = %v", got)
	}
	if got := evalStr(t, `="a"+1`, nil); got.Err != "#VALUE!" {
		t.Errorf("type error = %v", got)
	}
	if got := evalStr(t, `=IFERROR(1/0, 42)`, nil); got.Num != 42 {
		t.Errorf("IFERROR = %v", got)
	}
	// Errors propagate through expressions.
	if got := evalStr(t, `=1 + 1/0`, nil); !got.IsError() {
		t.Errorf("error should propagate: %v", got)
	}
}

func TestEvalReferencesAndAggregates(t *testing.T) {
	src := newMapSource()
	for i := 0; i < 10; i++ {
		src.set("", "A"+itoa(i+1), sheet.Number(float64(i+1)))
	}
	src.set("", "B1", sheet.String_("label"))
	src.set("", "C1", sheet.Number(100))
	src.set("Sheet2", "A1", sheet.Number(77))

	cases := []struct {
		src  string
		want float64
	}{
		{"=A1+A2", 3},
		{"=SUM(A1:A10)", 55},
		{"=AVERAGE(A1:A10)", 5.5},
		{"=MIN(A1:A10)+MAX(A1:A10)", 11},
		{"=COUNT(A1:B10)", 10},  // only numbers
		{"=COUNTA(A1:C10)", 12}, // non-empty
		{"=SUM(A1:A5, C1, 3)", 118},
		{"=SUM($A$1:$A$3)", 6},
		{"=Sheet2!A1", 77},
		{"=SUM(Sheet2!A1:A2)", 77},
		{"=SUMIF(A1:A10, \">5\")", 40},
		{"=COUNTIF(A1:A10, \"<=3\")", 3},
		{"=AVERAGEIF(A1:A10, \">8\")", 9.5},
		{"=PRODUCT(A1:A4)", 24},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, src)
		if got.Kind != sheet.KindNumber || got.Num != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	// An unset cell is empty and counts as 0 in arithmetic.
	if got := evalStr(t, "=Z99+5", src); got.Num != 5 {
		t.Errorf("empty cell arithmetic = %v", got)
	}
	// A bare range in scalar context is an error.
	if got := evalStr(t, "=A1:A10", src); !got.IsError() {
		t.Errorf("bare range = %v", got)
	}
}

func TestEvalLookupFunctions(t *testing.T) {
	src := newMapSource()
	// A lookup table: id in column A, name in B, score in C (rows 1..4).
	ids := []float64{10, 20, 30, 40}
	names := []string{"alice", "bob", "carol", "dave"}
	scores := []float64{95, 72, 88, 61}
	for i := range ids {
		src.set("", "A"+itoa(i+1), sheet.Number(ids[i]))
		src.set("", "B"+itoa(i+1), sheet.String_(names[i]))
		src.set("", "C"+itoa(i+1), sheet.Number(scores[i]))
	}
	if got := evalStr(t, `=VLOOKUP(30, A1:C4, 2)`, src); got.Str != "carol" {
		t.Errorf("VLOOKUP = %v", got)
	}
	if got := evalStr(t, `=VLOOKUP(99, A1:C4, 2)`, src); got.Err != "#N/A" {
		t.Errorf("VLOOKUP miss = %v", got)
	}
	if got := evalStr(t, `=INDEX(A1:C4, 2, 3)`, src); got.Num != 72 {
		t.Errorf("INDEX = %v", got)
	}
	if got := evalStr(t, `=INDEX(A1:C4, 9, 1)`, src); !got.IsError() {
		t.Errorf("INDEX out of range = %v", got)
	}
	if got := evalStr(t, `=MATCH("bob", B1:B4, 0)`, src); got.Num != 2 {
		t.Errorf("MATCH = %v", got)
	}
	if got := evalStr(t, `=MATCH("zed", B1:B4, 0)`, src); got.Err != "#N/A" {
		t.Errorf("MATCH miss = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"=1 +",
		"=SUM(A1:A2",
		"=(1+2",
		`="unterminated`,
		"=#",
		"=A1:",
		"=foo",         // not a function call, not a valid reference
		"=SUM(1, , 2)", // empty argument
		"=1 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestReferences(t *testing.T) {
	e, err := Parse(`=SUM(A1:B10) + Sheet2!C3 * VLOOKUP(D1, E1:F100, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	refs := References(e)
	if len(refs) != 4 {
		t.Fatalf("refs = %d: %+v", len(refs), refs)
	}
	find := func(sheetName, rng string) bool {
		want := sheet.MustParseRange(rng)
		for _, r := range refs {
			if r.Sheet == sheetName && r.Range == want {
				return true
			}
		}
		return false
	}
	if !find("", "A1:B10") || !find("Sheet2", "C3") || !find("", "D1") || !find("", "E1:F100") {
		t.Errorf("missing references: %+v", refs)
	}
}

func TestIsDBFormulaAndArgs(t *testing.T) {
	if name, ok := IsDBFormula(`=DBSQL("SELECT * FROM t")`); !ok || name != "DBSQL" {
		t.Error("DBSQL not detected")
	}
	if name, ok := IsDBFormula(" dbtable(\"movies\") "); !ok || name != "DBTABLE" {
		t.Error("DBTABLE not detected (case-insensitive, no =)")
	}
	if _, ok := IsDBFormula("=SUM(A1:A2)"); ok {
		t.Error("plain formula misdetected")
	}
	name, args, err := DBArgs(`=DBSQL("SELECT name FROM actors WHERE id = RANGEVALUE(B1)")`)
	if err != nil || name != "DBSQL" || len(args) != 1 || !strings.Contains(args[0], "RANGEVALUE(B1)") {
		t.Errorf("DBArgs = %q %v %v", name, args, err)
	}
	name, args, err = DBArgs(`=DBTABLE("students", A3)`)
	if err != nil || name != "DBTABLE" || len(args) != 2 || args[0] != "students" || args[1] != "A3" {
		t.Errorf("DBTABLE args = %q %v %v", name, args, err)
	}
	// Quoted commas and escaped quotes stay inside one argument.
	_, args, err = DBArgs(`=DBSQL("SELECT 'a,b' AS x, COUNT(*) FROM t WHERE n = ""q""")`)
	if err != nil || len(args) != 1 || !strings.Contains(args[0], `'a,b'`) || !strings.Contains(args[0], `"q"`) {
		t.Errorf("quoted args = %v %v", args, err)
	}
	if _, _, err := DBArgs("=DBSQL(no close"); err == nil {
		t.Error("malformed DB formula should fail")
	}
}

func TestRebase(t *testing.T) {
	// Copying =A1+$B$1 from B2 to D5 shifts the relative ref by (+3,+2).
	out, err := Rebase("=A1+$B$1", sheet.MustParseAddress("B2"), sheet.MustParseAddress("D5"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "C4") || !strings.Contains(out, "$B$1") {
		t.Errorf("Rebase = %q", out)
	}
	// Ranges, sheet qualifiers, functions and literals survive.
	out, err = Rebase(`=SUM(Sheet2!A1:A10) & " ok" & IF(C1>0, -1, 50%)`, sheet.Addr(0, 0), sheet.Addr(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sheet2!B3:B12") || !strings.Contains(out, `" ok"`) || !strings.Contains(out, "D3") {
		t.Errorf("Rebase complex = %q", out)
	}
	// The rebased formula still parses.
	if _, err := Parse(out); err != nil {
		t.Errorf("rebased formula does not parse: %v", err)
	}
	if _, err := Rebase("=1 +", sheet.Addr(0, 0), sheet.Addr(1, 1)); err == nil {
		t.Error("Rebase of invalid formula should fail")
	}
}

func itoa(i int) string {
	return sheet.Number(float64(i)).String()
}
