package formula

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Parse parses formula source text (with or without a leading "=").
func Parse(src string) (Expr, error) {
	s := strings.TrimSpace(src)
	s = strings.TrimPrefix(s, "=")
	p := &fparser{src: s}
	p.lex()
	if p.err != nil {
		return nil, p.err
	}
	e := p.parseExpr()
	if p.err != nil {
		return nil, p.err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("formula: unexpected %q after expression", p.toks[p.pos].text)
	}
	return e, nil
}

type ftokKind int

const (
	ftNumber ftokKind = iota
	ftString
	ftIdent // identifiers, cell refs, TRUE/FALSE, sheet names
	ftOp    // + - * / ^ & % = <> < <= > >=
	ftPunct // ( ) , : ! $
)

type ftok struct {
	kind ftokKind
	text string
}

type fparser struct {
	src  string
	toks []ftok
	pos  int
	err  error
}

func (p *fparser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("formula: "+format, args...)
	}
}

func (p *fparser) lex() {
	s := p.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			start := i
			for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
				i++
			}
			if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
				j := i + 1
				if j < len(s) && (s[j] == '+' || s[j] == '-') {
					j++
				}
				if j < len(s) && s[j] >= '0' && s[j] <= '9' {
					i = j
					for i < len(s) && s[i] >= '0' && s[i] <= '9' {
						i++
					}
				}
			}
			p.toks = append(p.toks, ftok{ftNumber, s[start:i]})
		case c == '"':
			i++
			var sb strings.Builder
			closed := false
			for i < len(s) {
				if s[i] == '"' {
					if i+1 < len(s) && s[i+1] == '"' {
						sb.WriteByte('"')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			if !closed {
				p.fail("unterminated string literal")
				return
			}
			p.toks = append(p.toks, ftok{ftString, sb.String()})
		case c == '\'':
			// Quoted sheet name: 'My Sheet'!A1
			i++
			var sb strings.Builder
			closed := false
			for i < len(s) {
				if s[i] == '\'' {
					closed = true
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			if !closed {
				p.fail("unterminated sheet name")
				return
			}
			p.toks = append(p.toks, ftok{ftIdent, sb.String()})
		case isFIdentStart(rune(c)):
			start := i
			for i < len(s) && isFIdentPart(rune(s[i])) {
				i++
			}
			p.toks = append(p.toks, ftok{ftIdent, s[start:i]})
		case c == '<':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>') {
				p.toks = append(p.toks, ftok{ftOp, s[i : i+2]})
				i += 2
			} else {
				p.toks = append(p.toks, ftok{ftOp, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				p.toks = append(p.toks, ftok{ftOp, ">="})
				i += 2
			} else {
				p.toks = append(p.toks, ftok{ftOp, ">"})
				i++
			}
		case c == '+' || c == '-' || c == '*' || c == '/' || c == '^' || c == '&' || c == '=' || c == '%':
			p.toks = append(p.toks, ftok{ftOp, string(c)})
			i++
		case c == '(' || c == ')' || c == ',' || c == ':' || c == '!' || c == '$':
			p.toks = append(p.toks, ftok{ftPunct, string(c)})
			i++
		default:
			p.fail("unexpected character %q", c)
			return
		}
	}
}

func isFIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isFIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *fparser) peek() (ftok, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return ftok{}, false
}

func (p *fparser) acceptOp(op string) bool {
	if t, ok := p.peek(); ok && t.kind == ftOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *fparser) acceptPunct(ch string) bool {
	if t, ok := p.peek(); ok && t.kind == ftPunct && t.text == ch {
		p.pos++
		return true
	}
	return false
}

// Grammar (precedence low to high): comparison < concat(&) < additive <
// multiplicative < power(^) < unary < postfix % < primary.

func (p *fparser) parseExpr() Expr { return p.parseComparison() }

func (p *fparser) parseComparison() Expr {
	left := p.parseConcat()
	for {
		t, ok := p.peek()
		if !ok || t.kind != ftOp {
			return left
		}
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.pos++
			right := p.parseConcat()
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
		default:
			return left
		}
	}
}

func (p *fparser) parseConcat() Expr {
	left := p.parseAdditive()
	for p.acceptOp("&") {
		right := p.parseAdditive()
		left = &BinaryExpr{Op: "&", Left: left, Right: right}
	}
	return left
}

func (p *fparser) parseAdditive() Expr {
	left := p.parseMultiplicative()
	for {
		switch {
		case p.acceptOp("+"):
			left = &BinaryExpr{Op: "+", Left: left, Right: p.parseMultiplicative()}
		case p.acceptOp("-"):
			left = &BinaryExpr{Op: "-", Left: left, Right: p.parseMultiplicative()}
		default:
			return left
		}
	}
}

func (p *fparser) parseMultiplicative() Expr {
	left := p.parsePower()
	for {
		switch {
		case p.acceptOp("*"):
			left = &BinaryExpr{Op: "*", Left: left, Right: p.parsePower()}
		case p.acceptOp("/"):
			left = &BinaryExpr{Op: "/", Left: left, Right: p.parsePower()}
		default:
			return left
		}
	}
}

func (p *fparser) parsePower() Expr {
	left := p.parseUnary()
	if p.acceptOp("^") {
		// Right-associative.
		return &BinaryExpr{Op: "^", Left: left, Right: p.parsePower()}
	}
	return left
}

func (p *fparser) parseUnary() Expr {
	if p.acceptOp("-") {
		return &UnaryExpr{Op: "-", X: p.parseUnary()}
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *fparser) parsePostfix() Expr {
	e := p.parsePrimary()
	for p.acceptOp("%") {
		e = &UnaryExpr{Op: "%", X: e}
	}
	return e
}

func (p *fparser) parsePrimary() Expr {
	t, ok := p.peek()
	if !ok {
		p.fail("unexpected end of formula")
		return &NumberLit{}
	}
	switch t.kind {
	case ftNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			p.fail("invalid number %q", t.text)
		}
		return &NumberLit{Value: f}
	case ftString:
		p.pos++
		return &TextLit{Value: t.text}
	case ftPunct:
		if t.text == "(" {
			p.pos++
			e := p.parseExpr()
			if !p.acceptPunct(")") {
				p.fail("missing closing parenthesis")
			}
			return e
		}
		if t.text == "$" {
			// Absolute reference starting with $.
			return p.parseReference("")
		}
		p.fail("unexpected %q", t.text)
		return &NumberLit{}
	case ftIdent:
		// Could be TRUE/FALSE, a function call, a cell reference, or a
		// sheet-qualified reference.
		upper := strings.ToUpper(t.text)
		if upper == "TRUE" || upper == "FALSE" {
			p.pos++
			return &BoolLit{Value: upper == "TRUE"}
		}
		// Sheet-qualified reference: Ident '!' ref
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == ftPunct && p.toks[p.pos+1].text == "!" {
			sheetName := t.text
			p.pos += 2
			return p.parseReference(sheetName)
		}
		// Function call: Ident '('
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == ftPunct && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			call := &Call{Name: upper}
			if p.acceptPunct(")") {
				return call
			}
			for {
				call.Args = append(call.Args, p.parseExpr())
				if p.acceptPunct(",") {
					continue
				}
				if p.acceptPunct(")") {
					return call
				}
				p.fail("expected ',' or ')' in call to %s", call.Name)
				return call
			}
		}
		// Otherwise it must be a cell reference (possibly the start of a
		// range).
		return p.parseReference("")
	default:
		p.fail("unexpected token %q", t.text)
		return &NumberLit{}
	}
}

// parseReference parses "A1", "$A$1", "A1:B10" etc., given an optional sheet
// qualifier that was already consumed.
func (p *fparser) parseReference(sheetName string) Expr {
	start, ok := p.parseSingleRef()
	if !ok {
		p.fail("invalid cell reference")
		return &NumberLit{}
	}
	if p.acceptPunct(":") {
		end, ok := p.parseSingleRef()
		if !ok {
			p.fail("invalid range reference")
			return &NumberLit{}
		}
		return &RangeRef{Sheet: sheetName, Start: start, End: end}
	}
	return &CellRef{Sheet: sheetName, Ref: start}
}

// parseSingleRef consumes one cell reference, which may span multiple tokens
// because of '$' markers (e.g. "$", "A1" or "$", "A", "$", "1").
func (p *fparser) parseSingleRef() (sheet.Ref, bool) {
	var sb strings.Builder
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind == ftPunct && t.text == "$" {
			sb.WriteString("$")
			p.pos++
			continue
		}
		if t.kind == ftIdent || t.kind == ftNumber {
			sb.WriteString(t.text)
			p.pos++
			// A reference is at most: $ letters $ digits; stop after a token
			// that ends in a digit.
			last := t.text[len(t.text)-1]
			if last >= '0' && last <= '9' {
				// Check for a following "$digits" part (e.g. A$1 lexes as
				// ident "A", punct "$", number "1").
				if n, ok2 := p.peek(); ok2 && n.kind == ftPunct && n.text == "$" &&
					p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == ftNumber {
					continue
				}
				break
			}
			continue
		}
		break
	}
	ref, err := sheet.ParseRef(sb.String())
	if err != nil {
		return sheet.Ref{}, false
	}
	return ref, true
}
