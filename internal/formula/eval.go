package formula

import (
	"math"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// DataSource supplies cell contents to the evaluator. The compute engine
// passes an implementation backed by the workbook.
type DataSource interface {
	// CellValue returns the current value of a cell. sheetName "" means the
	// sheet the formula lives on.
	CellValue(sheetName string, a sheet.Address) sheet.Value
	// RangeValues returns the values of a range as a dense row-major
	// matrix.
	RangeValues(sheetName string, r sheet.Range) [][]sheet.Value
}

// Env is the evaluation environment of one formula.
type Env struct {
	// Sheet is the name of the sheet the formula lives on.
	Sheet string
	// At is the address of the cell holding the formula.
	At sheet.Address
	// Data resolves references.
	Data DataSource
}

// Eval evaluates a parsed formula expression to a spreadsheet value.
// Evaluation never returns a Go error: failures surface as spreadsheet error
// values (#VALUE!, #DIV/0!, #NAME?, ...) exactly as a spreadsheet would show
// them.
func Eval(e Expr, env *Env) sheet.Value {
	switch x := e.(type) {
	case *NumberLit:
		return sheet.Number(x.Value)
	case *TextLit:
		return sheet.String_(x.Value)
	case *BoolLit:
		return sheet.Bool_(x.Value)
	case *CellRef:
		if env.Data == nil {
			return sheet.ErrRef
		}
		return env.Data.CellValue(x.Sheet, x.Ref.Address)
	case *RangeRef:
		// A bare range in a scalar context yields #VALUE!; ranges are only
		// meaningful as function arguments.
		return sheet.ErrValue
	case *UnaryExpr:
		v := Eval(x.X, env)
		if v.IsError() {
			return v
		}
		f, ok := v.AsNumber()
		if !ok {
			return sheet.ErrValue
		}
		if x.Op == "%" {
			return sheet.Number(f / 100)
		}
		return sheet.Number(-f)
	case *BinaryExpr:
		return evalBinary(x, env)
	case *Call:
		return evalCall(x, env)
	default:
		return sheet.ErrValue
	}
}

func evalBinary(x *BinaryExpr, env *Env) sheet.Value {
	l := Eval(x.Left, env)
	if l.IsError() {
		return l
	}
	r := Eval(x.Right, env)
	if r.IsError() {
		return r
	}
	switch x.Op {
	case "&":
		return sheet.String_(l.AsString() + r.AsString())
	case "=", "<>", "<", "<=", ">", ">=":
		var res bool
		switch x.Op {
		case "=":
			res = l.Equal(r)
		case "<>":
			res = !l.Equal(r)
		case "<":
			res = l.Compare(r) < 0
		case "<=":
			res = l.Compare(r) <= 0
		case ">":
			res = l.Compare(r) > 0
		case ">=":
			res = l.Compare(r) >= 0
		}
		return sheet.Bool_(res)
	}
	a, okA := l.AsNumber()
	b, okB := r.AsNumber()
	if !okA || !okB {
		return sheet.ErrValue
	}
	switch x.Op {
	case "+":
		return sheet.Number(a + b)
	case "-":
		return sheet.Number(a - b)
	case "*":
		return sheet.Number(a * b)
	case "/":
		if b == 0 {
			return sheet.ErrDiv0
		}
		return sheet.Number(a / b)
	case "^":
		return sheet.Number(math.Pow(a, b))
	default:
		return sheet.ErrValue
	}
}

// argValues flattens an argument into the list of values it contributes to an
// aggregating function: ranges expand to all their cells, scalars contribute
// themselves.
func argValues(e Expr, env *Env) ([]sheet.Value, sheet.Value) {
	if rr, ok := e.(*RangeRef); ok {
		if env.Data == nil {
			return nil, sheet.ErrRef
		}
		var out []sheet.Value
		for _, row := range env.Data.RangeValues(rr.Sheet, rr.Range()) {
			out = append(out, row...)
		}
		return out, sheet.Empty()
	}
	v := Eval(e, env)
	if v.IsError() {
		return nil, v
	}
	return []sheet.Value{v}, sheet.Empty()
}

// rangeMatrix evaluates an argument that must be a range.
func rangeMatrix(e Expr, env *Env) ([][]sheet.Value, bool) {
	rr, ok := e.(*RangeRef)
	if !ok || env.Data == nil {
		return nil, false
	}
	return env.Data.RangeValues(rr.Sheet, rr.Range()), true
}

func evalCall(x *Call, env *Env) sheet.Value {
	name := x.Name
	switch name {
	case "DBSQL", "DBTABLE":
		// Evaluated by the core engine (results span a range of cells); a
		// plain evaluator reports the construct as unknown.
		return sheet.ErrName
	case "IF":
		if len(x.Args) < 2 || len(x.Args) > 3 {
			return sheet.ErrValue
		}
		cond := Eval(x.Args[0], env)
		if cond.IsError() {
			return cond
		}
		b, ok := cond.AsBool()
		if !ok {
			return sheet.ErrValue
		}
		if b {
			return Eval(x.Args[1], env)
		}
		if len(x.Args) == 3 {
			return Eval(x.Args[2], env)
		}
		return sheet.Bool_(false)
	case "IFERROR":
		if len(x.Args) != 2 {
			return sheet.ErrValue
		}
		v := Eval(x.Args[0], env)
		if v.IsError() {
			return Eval(x.Args[1], env)
		}
		return v
	case "AND", "OR":
		res := name == "AND"
		for _, a := range x.Args {
			vals, errv := argValues(a, env)
			if errv.IsError() {
				return errv
			}
			for _, v := range vals {
				b, ok := v.AsBool()
				if !ok {
					return sheet.ErrValue
				}
				if name == "AND" {
					res = res && b
				} else {
					res = res || b
				}
			}
		}
		return sheet.Bool_(res)
	case "NOT":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		v := Eval(x.Args[0], env)
		if v.IsError() {
			return v
		}
		b, ok := v.AsBool()
		if !ok {
			return sheet.ErrValue
		}
		return sheet.Bool_(!b)
	case "SUM", "AVERAGE", "AVG", "COUNT", "COUNTA", "MIN", "MAX", "PRODUCT":
		return evalAggregate(name, x.Args, env)
	case "ABS", "SQRT", "INT", "FLOOR", "CEILING", "EXP", "LN":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		v := Eval(x.Args[0], env)
		if v.IsError() {
			return v
		}
		f, ok := v.AsNumber()
		if !ok {
			return sheet.ErrValue
		}
		switch name {
		case "ABS":
			return sheet.Number(math.Abs(f))
		case "SQRT":
			if f < 0 {
				return sheet.Errorf("#NUM!")
			}
			return sheet.Number(math.Sqrt(f))
		case "INT", "FLOOR":
			return sheet.Number(math.Floor(f))
		case "CEILING":
			return sheet.Number(math.Ceil(f))
		case "EXP":
			return sheet.Number(math.Exp(f))
		case "LN":
			if f <= 0 {
				return sheet.Errorf("#NUM!")
			}
			return sheet.Number(math.Log(f))
		}
	case "ROUND":
		if len(x.Args) < 1 || len(x.Args) > 2 {
			return sheet.ErrValue
		}
		v := Eval(x.Args[0], env)
		if v.IsError() {
			return v
		}
		f, ok := v.AsNumber()
		if !ok {
			return sheet.ErrValue
		}
		digits := 0.0
		if len(x.Args) == 2 {
			d := Eval(x.Args[1], env)
			digits, _ = d.AsNumber()
		}
		scale := math.Pow(10, digits)
		return sheet.Number(math.Round(f*scale) / scale)
	case "MOD":
		if len(x.Args) != 2 {
			return sheet.ErrValue
		}
		a := Eval(x.Args[0], env)
		b := Eval(x.Args[1], env)
		af, ok1 := a.AsNumber()
		bf, ok2 := b.AsNumber()
		if !ok1 || !ok2 {
			return sheet.ErrValue
		}
		if bf == 0 {
			return sheet.ErrDiv0
		}
		return sheet.Number(math.Mod(af, bf))
	case "LEN":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		return sheet.Number(float64(len([]rune(Eval(x.Args[0], env).AsString()))))
	case "UPPER", "LOWER", "TRIM":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		v := Eval(x.Args[0], env)
		if v.IsError() {
			return v
		}
		s := v.AsString()
		switch name {
		case "UPPER":
			return sheet.String_(strings.ToUpper(s))
		case "LOWER":
			return sheet.String_(strings.ToLower(s))
		default:
			return sheet.String_(strings.TrimSpace(s))
		}
	case "LEFT", "RIGHT":
		if len(x.Args) < 1 || len(x.Args) > 2 {
			return sheet.ErrValue
		}
		s := []rune(Eval(x.Args[0], env).AsString())
		n := 1.0
		if len(x.Args) == 2 {
			n, _ = Eval(x.Args[1], env).AsNumber()
		}
		k := int(n)
		if k < 0 {
			return sheet.ErrValue
		}
		if k > len(s) {
			k = len(s)
		}
		if name == "LEFT" {
			return sheet.String_(string(s[:k]))
		}
		return sheet.String_(string(s[len(s)-k:]))
	case "MID":
		if len(x.Args) != 3 {
			return sheet.ErrValue
		}
		s := []rune(Eval(x.Args[0], env).AsString())
		start, _ := Eval(x.Args[1], env).AsNumber()
		length, _ := Eval(x.Args[2], env).AsNumber()
		i := int(start) - 1
		if i < 0 || length < 0 {
			return sheet.ErrValue
		}
		if i > len(s) {
			i = len(s)
		}
		j := i + int(length)
		if j > len(s) {
			j = len(s)
		}
		return sheet.String_(string(s[i:j]))
	case "CONCATENATE", "CONCAT":
		var sb strings.Builder
		for _, a := range x.Args {
			vals, errv := argValues(a, env)
			if errv.IsError() {
				return errv
			}
			for _, v := range vals {
				sb.WriteString(v.AsString())
			}
		}
		return sheet.String_(sb.String())
	case "ISBLANK":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		return sheet.Bool_(Eval(x.Args[0], env).IsEmpty())
	case "ISNUMBER":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		return sheet.Bool_(Eval(x.Args[0], env).IsNumber())
	case "ISERROR":
		if len(x.Args) != 1 {
			return sheet.ErrValue
		}
		return sheet.Bool_(Eval(x.Args[0], env).IsError())
	case "VLOOKUP":
		return evalVlookup(x.Args, env)
	case "INDEX":
		return evalIndex(x.Args, env)
	case "MATCH":
		return evalMatch(x.Args, env)
	case "SUMIF", "COUNTIF", "AVERAGEIF":
		return evalCondAggregate(name, x.Args, env)
	default:
		return sheet.ErrName
	}
	return sheet.ErrValue
}

func evalAggregate(name string, args []Expr, env *Env) sheet.Value {
	var nums []float64
	countAll := 0
	for _, a := range args {
		vals, errv := argValues(a, env)
		if errv.IsError() {
			return errv
		}
		for _, v := range vals {
			if v.IsError() {
				return v
			}
			if !v.IsEmpty() {
				countAll++
			}
			if f, ok := v.AsNumber(); ok && v.Kind == sheet.KindNumber {
				nums = append(nums, f)
			} else if v.Kind == sheet.KindBool || (v.Kind == sheet.KindString && false) {
				// Spreadsheets exclude text and booleans from SUM/AVERAGE
				// over ranges; scalars were already filtered by kind.
				continue
			}
		}
	}
	switch name {
	case "COUNT":
		return sheet.Number(float64(len(nums)))
	case "COUNTA":
		return sheet.Number(float64(countAll))
	case "SUM":
		s := 0.0
		for _, f := range nums {
			s += f
		}
		return sheet.Number(s)
	case "PRODUCT":
		p := 1.0
		for _, f := range nums {
			p *= f
		}
		return sheet.Number(p)
	case "AVERAGE", "AVG":
		if len(nums) == 0 {
			return sheet.ErrDiv0
		}
		s := 0.0
		for _, f := range nums {
			s += f
		}
		return sheet.Number(s / float64(len(nums)))
	case "MIN", "MAX":
		if len(nums) == 0 {
			return sheet.Number(0)
		}
		best := nums[0]
		for _, f := range nums[1:] {
			if (name == "MIN" && f < best) || (name == "MAX" && f > best) {
				best = f
			}
		}
		return sheet.Number(best)
	}
	return sheet.ErrValue
}

// evalVlookup implements VLOOKUP(value, range, colIndex [, exact]).
// Only exact matching is supported (the common spreadsheet usage with FALSE).
func evalVlookup(args []Expr, env *Env) sheet.Value {
	if len(args) < 3 || len(args) > 4 {
		return sheet.ErrValue
	}
	needle := Eval(args[0], env)
	if needle.IsError() {
		return needle
	}
	matrix, ok := rangeMatrix(args[1], env)
	if !ok {
		return sheet.ErrValue
	}
	colV := Eval(args[2], env)
	colF, ok := colV.AsNumber()
	if !ok || int(colF) < 1 {
		return sheet.ErrValue
	}
	col := int(colF) - 1
	for _, row := range matrix {
		if len(row) == 0 {
			continue
		}
		if row[0].Equal(needle) {
			if col < len(row) {
				return row[col]
			}
			return sheet.ErrRef
		}
	}
	return sheet.ErrNA
}

// evalIndex implements INDEX(range, row [, col]) with 1-based indexes.
func evalIndex(args []Expr, env *Env) sheet.Value {
	if len(args) < 2 || len(args) > 3 {
		return sheet.ErrValue
	}
	matrix, ok := rangeMatrix(args[0], env)
	if !ok {
		return sheet.ErrValue
	}
	rF, ok := Eval(args[1], env).AsNumber()
	if !ok {
		return sheet.ErrValue
	}
	cF := 1.0
	if len(args) == 3 {
		if cF, ok = Eval(args[2], env).AsNumber(); !ok {
			return sheet.ErrValue
		}
	}
	r, c := int(rF)-1, int(cF)-1
	if r < 0 || r >= len(matrix) || c < 0 || c >= len(matrix[r]) {
		return sheet.ErrRef
	}
	return matrix[r][c]
}

// evalMatch implements MATCH(value, range, 0) — exact match position within a
// single row or column.
func evalMatch(args []Expr, env *Env) sheet.Value {
	if len(args) < 2 || len(args) > 3 {
		return sheet.ErrValue
	}
	needle := Eval(args[0], env)
	matrix, ok := rangeMatrix(args[1], env)
	if !ok {
		return sheet.ErrValue
	}
	pos := 0
	for _, row := range matrix {
		for _, v := range row {
			pos++
			if v.Equal(needle) {
				return sheet.Number(float64(pos))
			}
		}
	}
	return sheet.ErrNA
}

// evalCondAggregate implements SUMIF/COUNTIF/AVERAGEIF(range, criterion
// [, sumRange]).
func evalCondAggregate(name string, args []Expr, env *Env) sheet.Value {
	if len(args) < 2 || len(args) > 3 {
		return sheet.ErrValue
	}
	matrix, ok := rangeMatrix(args[0], env)
	if !ok {
		return sheet.ErrValue
	}
	crit := Eval(args[1], env)
	if crit.IsError() {
		return crit
	}
	var sumMatrix [][]sheet.Value
	if len(args) == 3 {
		if sumMatrix, ok = rangeMatrix(args[2], env); !ok {
			return sheet.ErrValue
		}
	} else {
		sumMatrix = matrix
	}
	match := criterionMatcher(crit)
	count := 0
	sum := 0.0
	for i, row := range matrix {
		for j, v := range row {
			if !match(v) {
				continue
			}
			count++
			if i < len(sumMatrix) && j < len(sumMatrix[i]) {
				if f, ok := sumMatrix[i][j].AsNumber(); ok {
					sum += f
				}
			}
		}
	}
	switch name {
	case "COUNTIF":
		return sheet.Number(float64(count))
	case "SUMIF":
		return sheet.Number(sum)
	default: // AVERAGEIF
		if count == 0 {
			return sheet.ErrDiv0
		}
		return sheet.Number(sum / float64(count))
	}
}

// criterionMatcher interprets a SUMIF/COUNTIF criterion: ">90", "<=5",
// "<>x", or a plain value for equality.
func criterionMatcher(crit sheet.Value) func(sheet.Value) bool {
	if crit.Kind == sheet.KindString {
		s := strings.TrimSpace(crit.Str)
		for _, op := range []string{">=", "<=", "<>", ">", "<", "="} {
			if strings.HasPrefix(s, op) {
				operand := sheet.ParseLiteral(strings.TrimSpace(strings.TrimPrefix(s, op)))
				return func(v sheet.Value) bool {
					if v.IsEmpty() {
						return false
					}
					switch op {
					case ">":
						return v.Compare(operand) > 0
					case ">=":
						return v.Compare(operand) >= 0
					case "<":
						return v.Compare(operand) < 0
					case "<=":
						return v.Compare(operand) <= 0
					case "<>":
						return !v.Equal(operand)
					default:
						return v.Equal(operand)
					}
				}
			}
		}
	}
	return func(v sheet.Value) bool { return v.Equal(crit) }
}
