// Package formula implements DataSpread's spreadsheet formula language: the
// value-at-a-time expressions users type into cells ("=SUM(A1:A10)*2"),
// including cell and range references with absolute/relative markers and
// cross-sheet qualifiers, the usual spreadsheet functions, and recognition of
// the DataSpread-specific DBSQL/DBTABLE constructs (whose evaluation is
// performed by the core engine, not here).
package formula

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Expr is a parsed formula expression node.
type Expr interface{ node() }

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// TextLit is a string literal ("..." in formula syntax).
type TextLit struct{ Value string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// CellRef references a single cell, optionally on another sheet.
type CellRef struct {
	Sheet string // "" = formula's own sheet
	Ref   sheet.Ref
}

// RangeRef references a rectangular range, optionally on another sheet.
type RangeRef struct {
	Sheet string
	Start sheet.Ref
	End   sheet.Ref
}

// Range returns the referenced range (normalised).
func (r *RangeRef) Range() sheet.Range {
	return sheet.NewRange(r.Start.Address, r.End.Address)
}

// BinaryExpr is a binary operation: + - * / ^ & = <> < <= > >=.
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

// UnaryExpr is unary minus or percent (trailing %).
type UnaryExpr struct {
	Op string // "-" or "%"
	X  Expr
}

// Call is a function invocation.
type Call struct {
	Name string // upper-cased
	Args []Expr
}

func (*NumberLit) node()  {}
func (*TextLit) node()    {}
func (*BoolLit) node()    {}
func (*CellRef) node()    {}
func (*RangeRef) node()   {}
func (*BinaryExpr) node() {}
func (*UnaryExpr) node()  {}
func (*Call) node()       {}

// Reference describes one precedent of a formula: a range of cells on a
// sheet that the formula reads. The compute engine uses references to build
// the dependency graph.
type Reference struct {
	Sheet string // "" = formula's own sheet
	Range sheet.Range
}

// References returns every cell/range the expression reads.
func References(e Expr) []Reference {
	var out []Reference
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *CellRef:
			out = append(out, Reference{Sheet: x.Sheet, Range: sheet.Range{Start: x.Ref.Address, End: x.Ref.Address}})
		case *RangeRef:
			out = append(out, Reference{Sheet: x.Sheet, Range: x.Range()})
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.X)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// IsDBFormula reports whether formula source text is one of the DataSpread
// database constructs (DBSQL or DBTABLE) and returns its upper-cased name.
// These formulas are evaluated by the core engine because their results span
// a range of cells rather than a single value.
func IsDBFormula(src string) (string, bool) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(src), "="))
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "DBSQL"):
		return "DBSQL", true
	case strings.HasPrefix(upper, "DBTABLE"):
		return "DBTABLE", true
	}
	return "", false
}

// DBArgs extracts the string arguments of a DBSQL/DBTABLE formula, e.g.
// DBSQL("SELECT ...") -> ["SELECT ..."]. Arguments may be double-quoted
// strings or bare text separated by commas at the top level.
func DBArgs(src string) (name string, args []string, err error) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(src), "="))
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return "", nil, fmt.Errorf("formula: malformed database formula %q", src)
	}
	name = strings.ToUpper(strings.TrimSpace(s[:open]))
	body := strings.TrimSpace(s)
	body = body[open+1 : len(body)-1]
	// Split on top-level commas, honouring double-quoted strings.
	var cur strings.Builder
	inStr := false
	depth := 0
	flush := func() {
		arg := strings.TrimSpace(cur.String())
		if len(arg) >= 2 && arg[0] == '"' && arg[len(arg)-1] == '"' {
			arg = strings.ReplaceAll(arg[1:len(arg)-1], `""`, `"`)
		}
		if arg != "" {
			args = append(args, arg)
		}
		cur.Reset()
	}
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '"':
			if inStr && i+1 < len(body) && body[i+1] == '"' {
				cur.WriteString(`""`)
				i++
				continue
			}
			inStr = !inStr
			cur.WriteByte(c)
		case !inStr && c == '(':
			depth++
			cur.WriteByte(c)
		case !inStr && c == ')':
			depth--
			cur.WriteByte(c)
		case !inStr && depth == 0 && c == ',':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	if inStr {
		return "", nil, fmt.Errorf("formula: unterminated string in %q", src)
	}
	return name, args, nil
}

// Rebase rewrites a formula's relative references as if the formula were
// copied from one cell to another (spreadsheet copy-paste semantics).
// Absolute references ($A$1) are preserved verbatim.
func Rebase(src string, from, to sheet.Address) (string, error) {
	expr, err := Parse(src)
	if err != nil {
		return "", err
	}
	var render func(Expr) string
	render = func(e Expr) string {
		switch x := e.(type) {
		case *NumberLit:
			return sheet.Number(x.Value).String()
		case *TextLit:
			return `"` + strings.ReplaceAll(x.Value, `"`, `""`) + `"`
		case *BoolLit:
			if x.Value {
				return "TRUE"
			}
			return "FALSE"
		case *CellRef:
			r := x.Ref.Rebase(from, to)
			if x.Sheet != "" {
				return x.Sheet + "!" + r.String()
			}
			return r.String()
		case *RangeRef:
			s := x.Start.Rebase(from, to)
			e2 := x.End.Rebase(from, to)
			prefix := ""
			if x.Sheet != "" {
				prefix = x.Sheet + "!"
			}
			return prefix + s.String() + ":" + e2.String()
		case *UnaryExpr:
			if x.Op == "%" {
				return render(x.X) + "%"
			}
			return "-" + render(x.X)
		case *BinaryExpr:
			return "(" + render(x.Left) + x.Op + render(x.Right) + ")"
		case *Call:
			parts := make([]string, len(x.Args))
			for i, a := range x.Args {
				parts[i] = render(a)
			}
			return x.Name + "(" + strings.Join(parts, ",") + ")"
		default:
			return ""
		}
	}
	return render(expr), nil
}
