package catalog

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func TestTypeParsingAndString(t *testing.T) {
	cases := map[string]Type{
		"INT": TypeNumber, "integer": TypeNumber, "NUMERIC": TypeNumber, "double": TypeNumber,
		"TEXT": TypeText, "varchar": TypeText, "string": TypeText,
		"BOOL": TypeBool, "Boolean": TypeBool,
		"geography": TypeAny, "": TypeAny,
	}
	for in, want := range cases {
		if got := ParseType(in); got != want {
			t.Errorf("ParseType(%q) = %v, want %v", in, got, want)
		}
	}
	if TypeNumber.String() != "NUMERIC" || TypeText.String() != "TEXT" ||
		TypeBool.String() != "BOOLEAN" || TypeAny.String() != "ANY" {
		t.Error("Type.String wrong")
	}
}

func TestInferAndUnifyTypes(t *testing.T) {
	if InferType(sheet.Number(1)) != TypeNumber ||
		InferType(sheet.String_("x")) != TypeText ||
		InferType(sheet.Bool_(true)) != TypeBool ||
		InferType(sheet.Empty()) != TypeAny {
		t.Error("InferType wrong")
	}
	if UnifyTypes(TypeNumber, TypeNumber) != TypeNumber {
		t.Error("same types should unify to themselves")
	}
	if UnifyTypes(TypeAny, TypeText) != TypeText || UnifyTypes(TypeBool, TypeAny) != TypeBool {
		t.Error("Any should defer to the other type")
	}
	if UnifyTypes(TypeNumber, TypeText) != TypeAny {
		t.Error("conflicting types should widen to Any")
	}
}

func TestTypeAcceptsAndCoerce(t *testing.T) {
	if !TypeNumber.Accepts(sheet.Number(1)) || TypeNumber.Accepts(sheet.String_("x")) {
		t.Error("Accepts wrong for numbers")
	}
	if !TypeText.Accepts(sheet.Empty()) {
		t.Error("empty (NULL) should be accepted everywhere")
	}
	if !TypeAny.Accepts(sheet.ErrNA) {
		t.Error("Any accepts everything")
	}
	v, ok := TypeNumber.Coerce(sheet.String_("42"))
	if !ok || v.Num != 42 {
		t.Error("numeric coercion from string failed")
	}
	if _, ok := TypeNumber.Coerce(sheet.String_("abc")); ok {
		t.Error("non-numeric string should not coerce to number")
	}
	v, ok = TypeText.Coerce(sheet.Number(3))
	if !ok || v.Str != "3" {
		t.Error("text coercion failed")
	}
	v, ok = TypeBool.Coerce(sheet.Number(1))
	if !ok || !v.Bool {
		t.Error("bool coercion failed")
	}
	if v, ok := TypeAny.Coerce(sheet.ErrNA); !ok || !v.IsError() {
		t.Error("Any coercion should pass through")
	}
}

func TestCatalogCreateGetDrop(t *testing.T) {
	c := New()
	cols := []Column{
		{Name: "id", Type: TypeNumber, PrimaryKey: true},
		{Name: "name", Type: TypeText},
	}
	tbl, err := c.Create("Students", cols)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID == 0 || tbl.Version != 1 {
		t.Errorf("table meta wrong: %+v", tbl)
	}
	// Lookup is case-insensitive.
	got, ok := c.Get("sTUDENTS")
	if !ok || got.Name != "Students" || len(got.Columns) != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Returned definitions are copies.
	got.Columns[0].Name = "mutated"
	again, _ := c.Get("students")
	if again.Columns[0].Name != "id" {
		t.Error("Get must return a copy")
	}
	// Duplicate creation fails.
	if _, err := c.Create("STUDENTS", cols); err == nil {
		t.Error("duplicate table should fail")
	}
	// Validation.
	if _, err := c.Create("", cols); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := c.Create("x", nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := c.Create("x", []Column{{Name: "a"}, {Name: "A"}}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if _, err := c.Create("x", []Column{{Name: ""}}); err == nil {
		t.Error("empty column name should fail")
	}
	// MustGet.
	if _, err := c.MustGet("students"); err != nil {
		t.Error(err)
	}
	if _, err := c.MustGet("nope"); err == nil || !errors.As(err, &ErrNoTable{}) {
		var e ErrNoTable
		if !errors.As(err, &e) {
			t.Errorf("MustGet missing = %v", err)
		}
	}
	// Drop.
	if err := c.Drop("Students"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("students"); ok {
		t.Error("dropped table still visible")
	}
	if err := c.Drop("students"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogList(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "Alpha", "midway"} {
		if _, err := c.Create(n, []Column{{Name: "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{}
	for _, tbl := range c.List() {
		names = append(names, tbl.Name)
	}
	if strings.Join(names, ",") != "Alpha,midway,zeta" {
		t.Errorf("List order = %v", names)
	}
}

func TestCatalogSchemaEvolution(t *testing.T) {
	c := New()
	_, err := c.Create("t", []Column{{Name: "a", Type: TypeNumber}, {Name: "b", Type: TypeText}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Version("t") != 1 {
		t.Error("initial version should be 1")
	}
	if err := c.AddColumn("t", Column{Name: "c", Type: TypeBool}); err != nil {
		t.Fatal(err)
	}
	if c.Version("t") != 2 {
		t.Error("AddColumn should bump version")
	}
	if err := c.AddColumn("t", Column{Name: "A"}); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
	if err := c.AddColumn("missing", Column{Name: "x"}); err == nil {
		t.Error("AddColumn to missing table should fail")
	}
	idx, err := c.DropColumn("t", "B")
	if err != nil || idx != 1 {
		t.Fatalf("DropColumn = %d, %v", idx, err)
	}
	tbl, _ := c.Get("t")
	if len(tbl.Columns) != 2 || tbl.Columns[1].Name != "c" {
		t.Errorf("columns after drop = %+v", tbl.Columns)
	}
	if _, err := c.DropColumn("t", "nope"); err == nil {
		t.Error("dropping unknown column should fail")
	}
	if _, err := c.DropColumn("missing", "x"); err == nil {
		t.Error("dropping from missing table should fail")
	}
	// Cannot drop the last column.
	_, _ = c.DropColumn("t", "a")
	if _, err := c.DropColumn("t", "c"); err == nil {
		t.Error("dropping the only column should fail")
	}
	// Rename.
	if err := c.RenameColumn("t", "c", "renamed"); err != nil {
		t.Fatal(err)
	}
	tbl, _ = c.Get("t")
	if _, ok := tbl.ColumnIndex("renamed"); !ok {
		t.Error("rename did not stick")
	}
	if err := c.RenameColumn("t", "missing", "x"); err == nil {
		t.Error("renaming missing column should fail")
	}
	if err := c.RenameColumn("t", "renamed", ""); err == nil {
		t.Error("renaming to empty should fail")
	}
	if c.Version("missing") != 0 {
		t.Error("Version of missing table should be 0")
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := &Table{Name: "x", Columns: []Column{
		{Name: "id", PrimaryKey: true},
		{Name: "grp", PrimaryKey: true},
		{Name: "val"},
	}}
	if idx, ok := tbl.ColumnIndex("GRP"); !ok || idx != 1 {
		t.Error("ColumnIndex wrong")
	}
	if _, ok := tbl.ColumnIndex("zzz"); ok {
		t.Error("missing column found")
	}
	pk := tbl.PrimaryKey()
	if len(pk) != 2 || pk[0] != 0 || pk[1] != 1 {
		t.Errorf("PrimaryKey = %v", pk)
	}
	names := tbl.ColumnNames()
	if len(names) != 3 || names[2] != "val" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := New()
	_, _ = c.Create("base", []Column{{Name: "a"}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, _ = c.Get("base")
				_ = c.List()
				_ = c.Version("base")
			}
		}(g)
	}
	wg.Wait()
}

func TestInferSchemaWithHeader(t *testing.T) {
	values := [][]sheet.Value{
		{sheet.String_("Student ID"), sheet.String_("Name"), sheet.String_("Score")},
		{sheet.Number(1), sheet.String_("alice"), sheet.Number(91.5)},
		{sheet.Number(2), sheet.String_("bob"), sheet.Number(85)},
	}
	cols, data, header := InferSchema(values)
	if !header {
		t.Fatal("header should be detected")
	}
	if len(cols) != 3 || cols[0].Name != "Student_ID" || cols[1].Name != "Name" || cols[2].Name != "Score" {
		t.Errorf("cols = %+v", cols)
	}
	if cols[0].Type != TypeNumber || cols[1].Type != TypeText || cols[2].Type != TypeNumber {
		t.Errorf("types = %v %v %v", cols[0].Type, cols[1].Type, cols[2].Type)
	}
	if len(data) != 2 || data[0][1].Str != "alice" {
		t.Errorf("data = %+v", data)
	}
}

func TestInferSchemaWithoutHeader(t *testing.T) {
	values := [][]sheet.Value{
		{sheet.Number(1), sheet.Number(2)},
		{sheet.Number(3), sheet.Number(4)},
	}
	cols, data, header := InferSchema(values)
	if header {
		t.Fatal("numeric first row should not be a header")
	}
	if cols[0].Name != "col1" || cols[1].Name != "col2" {
		t.Errorf("cols = %+v", cols)
	}
	if len(data) != 2 {
		t.Errorf("data rows = %d", len(data))
	}
}

func TestInferSchemaMixedTypesAndRagged(t *testing.T) {
	values := [][]sheet.Value{
		{sheet.String_("a"), sheet.String_("b")},
		{sheet.Number(1), sheet.String_("x")},
		{sheet.String_("oops")}, // ragged, mixed type in col a
	}
	cols, data, _ := InferSchema(values)
	if cols[0].Type != TypeAny {
		t.Errorf("mixed column should widen to Any, got %v", cols[0].Type)
	}
	if len(data) != 2 || !data[1][1].IsEmpty() {
		t.Error("ragged rows should be padded with empty values")
	}
}

func TestInferSchemaAllTextUsesHeaderHeuristics(t *testing.T) {
	values := [][]sheet.Value{
		{sheet.String_("name"), sheet.String_("city")},
		{sheet.String_("alice"), sheet.String_("urbana")},
		{sheet.String_("bob"), sheet.String_("champaign")},
	}
	cols, data, header := InferSchema(values)
	if !header || cols[0].Name != "name" || len(data) != 2 {
		t.Errorf("all-text header heuristic failed: header=%v cols=%+v", header, cols)
	}
	// Two-row all-text tables keep both rows as data (too risky to guess).
	_, data2, header2 := InferSchema(values[:2])
	if header2 || len(data2) != 2 {
		t.Error("two-row all-text should not strip a header")
	}
}

func TestInferSchemaDegenerate(t *testing.T) {
	if cols, _, _ := InferSchema(nil); cols != nil {
		t.Error("nil input should infer nothing")
	}
	if cols, _, _ := InferSchema([][]sheet.Value{{}}); cols != nil {
		t.Error("empty rows should infer nothing")
	}
	// Duplicate and unsanitary headers.
	values := [][]sheet.Value{
		{sheet.String_("a b"), sheet.String_("a-b"), sheet.String_("123"), sheet.String_("!!!")},
		{sheet.Number(1), sheet.Number(2), sheet.Number(3), sheet.Number(4)},
	}
	cols, _, header := InferSchema(values)
	if !header {
		t.Fatal("header expected")
	}
	if cols[0].Name != "a_b" || cols[1].Name != "a_b_2" {
		t.Errorf("dedupe failed: %v, %v", cols[0].Name, cols[1].Name)
	}
	if cols[2].Name != "c123" {
		t.Errorf("numeric header sanitisation = %q", cols[2].Name)
	}
	if cols[3].Name != "col4" {
		t.Errorf("symbol header fallback = %q", cols[3].Name)
	}
}
