package catalog

import (
	"fmt"
	"strings"

	"github.com/dataspread/dataspread/internal/sheet"
)

// InferSchema derives a table schema from a rectangular block of spreadsheet
// values, as done when the user selects a range and asks DataSpread to create
// a relational table from it (paper Figure 2b: "the schema of this table is
// automatically inferred using the column heading and the data").
//
// The first row is treated as the header when every non-empty cell in it is
// text and at least one data row below differs in kind; otherwise synthetic
// names (col1, col2, …) are generated and all rows are data. It returns the
// inferred columns and the data rows (with header removed when detected).
func InferSchema(values [][]sheet.Value) (cols []Column, data [][]sheet.Value, headerUsed bool) {
	if len(values) == 0 {
		return nil, nil, false
	}
	width := 0
	for _, r := range values {
		if len(r) > width {
			width = len(r)
		}
	}
	if width == 0 {
		return nil, nil, false
	}
	headerUsed = looksLikeHeader(values)
	start := 0
	names := make([]string, width)
	if headerUsed {
		for c := 0; c < width; c++ {
			var v sheet.Value
			if c < len(values[0]) {
				v = values[0][c]
			}
			names[c] = sanitizeName(v.AsString(), c)
		}
		start = 1
	} else {
		for c := 0; c < width; c++ {
			names[c] = fmt.Sprintf("col%d", c+1)
		}
	}
	names = dedupeNames(names)

	types := make([]Type, width)
	for c := range types {
		types[c] = TypeAny
	}
	data = make([][]sheet.Value, 0, len(values)-start)
	for _, r := range values[start:] {
		row := make([]sheet.Value, width)
		for c := 0; c < width; c++ {
			if c < len(r) {
				row[c] = r[c]
			}
		}
		data = append(data, row)
		for c := 0; c < width; c++ {
			if !row[c].IsEmpty() {
				types[c] = UnifyTypes(types[c], InferType(row[c]))
			}
		}
	}
	cols = make([]Column, width)
	for c := 0; c < width; c++ {
		cols[c] = Column{Name: names[c], Type: types[c]}
	}
	return cols, data, headerUsed
}

// HeaderNames derives only the column names of a rectangular block: the
// sanitized, deduplicated texts of the first row when it looks like a
// header, positional names (col1, col2, …) otherwise. It is InferSchema
// without type inference or data copying, for callers — like RANGETABLE
// scans — that need the relation shape but not relational column types.
func HeaderNames(values [][]sheet.Value) (names []string, headerUsed bool) {
	if len(values) == 0 {
		return nil, false
	}
	width := 0
	for _, r := range values {
		if len(r) > width {
			width = len(r)
		}
	}
	if width == 0 {
		return nil, false
	}
	names = make([]string, width)
	if looksLikeHeader(values) {
		for c := 0; c < width; c++ {
			var v sheet.Value
			if c < len(values[0]) {
				v = values[0][c]
			}
			names[c] = sanitizeName(v.AsString(), c)
		}
		return dedupeNames(names), true
	}
	for c := 0; c < width; c++ {
		names[c] = fmt.Sprintf("col%d", c+1)
	}
	return names, false
}

// looksLikeHeader applies the heuristic described above.
func looksLikeHeader(values [][]sheet.Value) bool {
	if len(values) < 2 {
		return false
	}
	sawText := false
	for _, v := range values[0] {
		switch v.Kind {
		case sheet.KindString:
			sawText = true
		case sheet.KindEmpty:
		default:
			return false
		}
	}
	if !sawText {
		return false
	}
	// At least one column whose first data value is not text suggests the
	// first row is a header rather than data.
	for c := range values[0] {
		for _, r := range values[1:] {
			if c < len(r) && !r[c].IsEmpty() {
				if r[c].Kind != sheet.KindString {
					return true
				}
				break
			}
		}
	}
	// All-text table: still treat the first row as a header when it has no
	// duplicates and the table has several rows — matching what a user
	// expects when exporting a contact-list-style range.
	seen := make(map[string]bool)
	for _, v := range values[0] {
		s := strings.ToLower(v.AsString())
		if s == "" || seen[s] {
			return false
		}
		seen[s] = true
	}
	return len(values) >= 3
}

// sanitizeName converts a header cell into a usable column name.
func sanitizeName(s string, idx int) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return fmt.Sprintf("col%d", idx+1)
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('c')
			}
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '.':
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return fmt.Sprintf("col%d", idx+1)
	}
	return b.String()
}

// dedupeNames appends numeric suffixes to repeated column names.
func dedupeNames(names []string) []string {
	seen := make(map[string]int, len(names))
	out := make([]string, len(names))
	for i, n := range names {
		k := strings.ToLower(n)
		if c, dup := seen[k]; dup {
			seen[k] = c + 1
			out[i] = fmt.Sprintf("%s_%d", n, c+1)
		} else {
			seen[k] = 1
			out[i] = n
		}
	}
	return out
}
