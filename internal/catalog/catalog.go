// Package catalog maintains the relational schema: tables, their columns and
// types, and schema evolution. DataSpread's catalog differs from a classic
// schema-first catalog in two ways required by the paper's unification
// semantics:
//
//   - Dynamic schema: adding or dropping an attribute is an ordinary,
//     cheap catalog operation (paired with the hybrid storage manager it is
//     "almost as efficient as changes to tuples"), and it is allowed inside
//     transactions.
//   - Inferred typing: column types can be inferred from observed
//     spreadsheet values when a sheet range is exported as a table
//     (paper §2.2 "Data typing").
//
// dslint:errdomain
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
)

// Type is a relational column type. DataSpread columns are dynamically typed
// at the storage layer; the catalog records the inferred or declared type for
// validation and display.
type Type int

const (
	// TypeAny accepts values of any kind.
	TypeAny Type = iota
	// TypeNumber is a double-precision numeric column.
	TypeNumber
	// TypeText is a text column.
	TypeText
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNumber:
		return "NUMERIC"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "ANY"
	}
}

// ParseType converts a SQL type name to a Type. Unknown names map to
// TypeAny so imported schemas never fail on exotic type spellings.
func ParseType(s string) Type {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "NUMERIC", "DECIMAL", "REAL", "FLOAT", "DOUBLE", "DOUBLE PRECISION", "NUMBER":
		return TypeNumber
	case "TEXT", "VARCHAR", "CHAR", "CHARACTER VARYING", "STRING":
		return TypeText
	case "BOOL", "BOOLEAN":
		return TypeBool
	default:
		return TypeAny
	}
}

// InferType returns the column type implied by a single value.
func InferType(v sheet.Value) Type {
	switch v.Kind {
	case sheet.KindNumber:
		return TypeNumber
	case sheet.KindString:
		return TypeText
	case sheet.KindBool:
		return TypeBool
	default:
		return TypeAny
	}
}

// UnifyTypes combines the types of two observed values in the same column.
// Identical types unify to themselves; anything else widens to TypeAny
// (except that TypeAny, which empty cells produce, defers to the other type).
func UnifyTypes(a, b Type) Type {
	if a == b {
		return a
	}
	if a == TypeAny {
		return b
	}
	if b == TypeAny {
		return a
	}
	return TypeAny
}

// Accepts reports whether a value is admissible in a column of this type.
// Empty values are always admissible (they are the relational NULL).
func (t Type) Accepts(v sheet.Value) bool {
	if v.IsEmpty() {
		return true
	}
	switch t {
	case TypeNumber:
		return v.Kind == sheet.KindNumber
	case TypeText:
		return v.Kind == sheet.KindString
	case TypeBool:
		return v.Kind == sheet.KindBool
	default:
		return true
	}
}

// Coerce attempts to convert a value to the column type, returning the
// converted value and whether the conversion succeeded. It is used when sheet
// edits flow into typed columns during two-way sync.
func (t Type) Coerce(v sheet.Value) (sheet.Value, bool) {
	if v.IsEmpty() || t == TypeAny {
		return v, true
	}
	switch t {
	case TypeNumber:
		if f, ok := v.AsNumber(); ok {
			return sheet.Number(f), true
		}
	case TypeText:
		if !v.IsError() {
			return sheet.String_(v.AsString()), true
		}
	case TypeBool:
		if b, ok := v.AsBool(); ok {
			return sheet.Bool_(b), true
		}
	}
	return v, false
}

// Column describes one attribute of a table.
type Column struct {
	Name       string
	Type       Type
	NotNull    bool
	PrimaryKey bool
	Default    sheet.Value
}

// Table describes a relational table. Version increments on every schema
// change so dependent objects (bindings, prepared plans) can detect
// staleness.
type Table struct {
	ID      int64
	Name    string
	Columns []Column
	Version int
}

// ColumnIndex returns the position of the named column (case-insensitive).
func (t *Table) ColumnIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// PrimaryKey returns the indexes of the primary key columns in declaration
// order (empty when the table has no declared key).
func (t *Table) PrimaryKey() []int {
	var out []int
	for i, c := range t.Columns {
		if c.PrimaryKey {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the table definition.
func (t *Table) Clone() *Table {
	cp := *t
	cp.Columns = append([]Column(nil), t.Columns...)
	return &cp
}

// Catalog is the set of table definitions. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	nextID int64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table), nextID: 1}
}

func key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// ErrNoTable wraps "table does not exist" errors.
type ErrNoTable struct{ Name string }

func (e ErrNoTable) Error() string { return fmt.Sprintf("catalog: table %q does not exist", e.Name) }

// Is places ErrNoTable in the engine's error taxonomy: errors.Is(err,
// dberr.ErrTableNotFound) matches it.
func (e ErrNoTable) Is(target error) bool { return target == dberr.ErrTableNotFound }

// Create registers a new table. Column names must be unique
// (case-insensitive) and non-empty.
func (c *Catalog) Create(name string, cols []Column) (*Table, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("catalog: empty table name: %w", dberr.ErrInvalidSchema)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q must have at least one column: %w", name, dberr.ErrInvalidSchema)
	}
	seen := make(map[string]bool, len(cols))
	for _, col := range cols {
		k := key(col.Name)
		if k == "" {
			return nil, fmt.Errorf("catalog: table %q has a column with an empty name: %w", name, dberr.ErrInvalidSchema)
		}
		if seen[k] {
			return nil, fmt.Errorf("catalog: table %q has duplicate column %q: %w", name, col.Name, dberr.ErrInvalidSchema)
		}
		seen[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[key(name)]; exists {
		return nil, fmt.Errorf("catalog: table %q: %w", name, dberr.ErrTableExists)
	}
	t := &Table{ID: c.nextID, Name: name, Columns: append([]Column(nil), cols...), Version: 1}
	c.nextID++
	c.tables[key(name)] = t
	return t.Clone(), nil
}

// Get returns a copy of the named table definition.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// MustGet returns the table or an ErrNoTable error.
func (c *Catalog) MustGet(name string) (*Table, error) {
	t, ok := c.Get(name)
	if !ok {
		return nil, ErrNoTable{Name: name}
	}
	return t, nil
}

// Drop removes a table definition.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return ErrNoTable{Name: name}
	}
	delete(c.tables, key(name))
	return nil
}

// List returns all table definitions sorted by name.
func (c *Catalog) List() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i].Name) < key(out[j].Name) })
	return out
}

// AddColumn appends a column to the table's schema and bumps its version.
func (c *Catalog) AddColumn(table string, col Column) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(table)]
	if !ok {
		return ErrNoTable{Name: table}
	}
	if _, exists := t.columnIndexLocked(col.Name); exists {
		return fmt.Errorf("catalog: column %q already exists in table %q: %w", col.Name, table, dberr.ErrColumnExists)
	}
	t.Columns = append(t.Columns, col)
	t.Version++
	return nil
}

// DropColumn removes the named column and returns its former index.
func (c *Catalog) DropColumn(table, column string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(table)]
	if !ok {
		return 0, ErrNoTable{Name: table}
	}
	idx, exists := t.columnIndexLocked(column)
	if !exists {
		return 0, fmt.Errorf("catalog: column %q of table %q: %w", column, table, dberr.ErrColumnNotFound)
	}
	if len(t.Columns) == 1 {
		return 0, fmt.Errorf("catalog: cannot drop the only column of table %q: %w", table, dberr.ErrInvalidSchema)
	}
	t.Columns = append(t.Columns[:idx], t.Columns[idx+1:]...)
	t.Version++
	return idx, nil
}

// RenameColumn renames a column in place.
func (c *Catalog) RenameColumn(table, oldName, newName string) error {
	if strings.TrimSpace(newName) == "" {
		return fmt.Errorf("catalog: empty new column name: %w", dberr.ErrInvalidSchema)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(table)]
	if !ok {
		return ErrNoTable{Name: table}
	}
	if _, exists := t.columnIndexLocked(newName); exists && !strings.EqualFold(oldName, newName) {
		return fmt.Errorf("catalog: column %q already exists in table %q: %w", newName, table, dberr.ErrColumnExists)
	}
	idx, exists := t.columnIndexLocked(oldName)
	if !exists {
		return fmt.Errorf("catalog: column %q does not exist in table %q: %w", oldName, table, dberr.ErrColumnNotFound)
	}
	t.Columns[idx].Name = newName
	t.Version++
	return nil
}

func (t *Table) columnIndexLocked(name string) (int, bool) {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return 0, false
}

// Version returns the current schema version of a table (0 when missing).
func (c *Catalog) Version(table string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t, ok := c.tables[key(table)]; ok {
		return t.Version
	}
	return 0
}
