package catalog

import (
	"errors"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
)

// TestSchemaErrorClassification pins the dberr sentinel taxonomy for schema
// operations: every validation failure must round-trip through errors.Is so
// callers can classify without string matching. These assert the wrapped-%w
// conversion of the package's bare fmt.Errorf sites.
func TestSchemaErrorClassification(t *testing.T) {
	c := New()

	// Create-time validation failures are ErrInvalidSchema.
	for name, cols := range map[string][]Column{
		"":    {{Name: "a", Type: TypeNumber}},
		"t0":  nil,
		"t1":  {{Name: "", Type: TypeNumber}},
		"dup": {{Name: "a", Type: TypeNumber}, {Name: "A", Type: TypeText}},
	} {
		if _, err := c.Create(name, cols); !errors.Is(err, dberr.ErrInvalidSchema) {
			t.Errorf("Create(%q) error = %v, want errors.Is dberr.ErrInvalidSchema", name, err)
		}
	}

	if _, err := c.Create("t", []Column{{Name: "a", Type: TypeNumber}}); err != nil {
		t.Fatal(err)
	}

	if err := c.AddColumn("t", Column{Name: "A", Type: TypeText}); !errors.Is(err, dberr.ErrColumnExists) {
		t.Errorf("AddColumn duplicate error = %v, want errors.Is dberr.ErrColumnExists", err)
	}
	if _, err := c.DropColumn("t", "missing"); !errors.Is(err, dberr.ErrColumnNotFound) {
		t.Errorf("DropColumn missing error = %v, want errors.Is dberr.ErrColumnNotFound", err)
	}
	if _, err := c.DropColumn("t", "a"); !errors.Is(err, dberr.ErrInvalidSchema) {
		t.Errorf("DropColumn last-column error = %v, want errors.Is dberr.ErrInvalidSchema", err)
	}
	if err := c.RenameColumn("t", "missing", "b"); !errors.Is(err, dberr.ErrColumnNotFound) {
		t.Errorf("RenameColumn missing error = %v, want errors.Is dberr.ErrColumnNotFound", err)
	}
	if err := c.AddColumn("t", Column{Name: "b", Type: TypeNumber}); err != nil {
		t.Fatal(err)
	}
	if err := c.RenameColumn("t", "b", "a"); !errors.Is(err, dberr.ErrColumnExists) {
		t.Errorf("RenameColumn collision error = %v, want errors.Is dberr.ErrColumnExists", err)
	}
	if err := c.RenameColumn("t", "b", ""); !errors.Is(err, dberr.ErrInvalidSchema) {
		t.Errorf("RenameColumn empty-name error = %v, want errors.Is dberr.ErrInvalidSchema", err)
	}
}
