// Package datagen generates the synthetic workloads used by the examples and
// the experiment harness: the course-gradebook and demographics sheets from
// the paper's introduction, the IMDB-style movies/actors tables from the
// demonstration (Figure 2a), and random numeric grids for scalability
// sweeps. All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"github.com/dataspread/dataspread/internal/sheet"
)

// Gradebook returns a (1+students) × (1+assignments+1) matrix: a header row,
// one row per student with one score per assignment, and a final "grade"
// column holding the average. Scores are in [40, 100].
func Gradebook(students, assignments int, seed int64) [][]sheet.Value {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]sheet.Value, 0, students+1)
	header := make([]sheet.Value, 0, assignments+2)
	header = append(header, sheet.String_("student"))
	for a := 0; a < assignments; a++ {
		header = append(header, sheet.String_(fmt.Sprintf("a%d", a+1)))
	}
	header = append(header, sheet.String_("grade"))
	rows = append(rows, header)
	for s := 0; s < students; s++ {
		row := make([]sheet.Value, 0, assignments+2)
		row = append(row, sheet.String_(fmt.Sprintf("s%06d", s)))
		total := 0.0
		for a := 0; a < assignments; a++ {
			score := float64(40 + rng.Intn(61))
			total += score
			row = append(row, sheet.Number(score))
		}
		row = append(row, sheet.Number(total/float64(assignments)))
		rows = append(rows, row)
	}
	return rows
}

// Demographics returns a (1+students) × 3 matrix: student id, demographic
// group (ug/ms/phd with 60/25/15% skew) and an enrolment year.
func Demographics(students int, seed int64) [][]sheet.Value {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]sheet.Value, 0, students+1)
	rows = append(rows, []sheet.Value{sheet.String_("student"), sheet.String_("grp"), sheet.String_("year")})
	for s := 0; s < students; s++ {
		grp := "ug"
		switch r := rng.Float64(); {
		case r > 0.85:
			grp = "phd"
		case r > 0.60:
			grp = "ms"
		}
		rows = append(rows, []sheet.Value{
			sheet.String_(fmt.Sprintf("s%06d", s)),
			sheet.String_(grp),
			sheet.Number(float64(2010 + rng.Intn(6))),
		})
	}
	return rows
}

// Movies describes the IMDB-style demo dataset: movies, actors, and the
// many-to-many movies2actors relationship.
type Movies struct {
	Movies        [][]sheet.Value // movieid, title, year
	Actors        [][]sheet.Value // actorid, name
	Movies2Actors [][]sheet.Value // movieid, actorid
}

// MoviesDataset generates a movies dataset with the given number of movies;
// the actor pool is one quarter of the movie count (at least 10) and each
// movie credits actorsPerMovie actors.
func MoviesDataset(movies, actorsPerMovie int, seed int64) Movies {
	rng := rand.New(rand.NewSource(seed))
	actorCount := movies / 4
	if actorCount < 10 {
		actorCount = 10
	}
	var out Movies
	for a := 0; a < actorCount; a++ {
		out.Actors = append(out.Actors, []sheet.Value{
			sheet.Number(float64(a + 1)),
			sheet.String_(fmt.Sprintf("actor_%05d", a+1)),
		})
	}
	for m := 0; m < movies; m++ {
		out.Movies = append(out.Movies, []sheet.Value{
			sheet.Number(float64(m + 1)),
			sheet.String_(fmt.Sprintf("movie_%06d", m+1)),
			sheet.Number(float64(1940 + rng.Intn(80))),
		})
		seen := make(map[int]bool, actorsPerMovie)
		for len(seen) < actorsPerMovie {
			a := rng.Intn(actorCount) + 1
			if seen[a] {
				continue
			}
			seen[a] = true
			out.Movies2Actors = append(out.Movies2Actors, []sheet.Value{
				sheet.Number(float64(m + 1)),
				sheet.Number(float64(a)),
			})
		}
	}
	return out
}

// NumericGrid returns a rows × cols matrix of random numbers in [0, 1000).
func NumericGrid(rows, cols int, seed int64) [][]sheet.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]sheet.Value, rows)
	for r := range out {
		out[r] = make([]sheet.Value, cols)
		for c := range out[r] {
			out[r][c] = sheet.Number(float64(rng.Intn(1000)))
		}
	}
	return out
}

// WideRows returns row tuples (no header) with the given number of numeric
// columns, for storage-layout experiments.
func WideRows(rows, cols int, seed int64) [][]sheet.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]sheet.Value, rows)
	for r := range out {
		out[r] = make([]sheet.Value, cols)
		out[r][0] = sheet.Number(float64(r + 1))
		for c := 1; c < cols; c++ {
			out[r][c] = sheet.Number(float64(rng.Intn(1_000_000)))
		}
	}
	return out
}

// SparseCells returns n cells scattered over a tall, moderately wide sheet
// region (rows x cols), for interface-storage experiments. Cell addresses are
// unique.
func SparseCells(n, rows, cols int, seed int64) map[sheet.Address]sheet.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[sheet.Address]sheet.Value, n)
	for len(out) < n {
		a := sheet.Addr(rng.Intn(rows), rng.Intn(cols))
		if _, dup := out[a]; dup {
			continue
		}
		out[a] = sheet.Number(float64(rng.Intn(10_000)))
	}
	return out
}
