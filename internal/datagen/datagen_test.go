package datagen

import (
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func TestGradebookShapeAndDeterminism(t *testing.T) {
	g := Gradebook(100, 5, 1)
	if len(g) != 101 {
		t.Fatalf("rows = %d", len(g))
	}
	if len(g[0]) != 7 || g[0][0].Str != "student" || g[0][6].Str != "grade" {
		t.Errorf("header = %v", g[0])
	}
	for _, row := range g[1:] {
		sum := 0.0
		for c := 1; c <= 5; c++ {
			if row[c].Num < 40 || row[c].Num > 100 {
				t.Fatalf("score out of range: %v", row[c])
			}
			sum += row[c].Num
		}
		if row[6].Num != sum/5 {
			t.Fatalf("grade column is not the average")
		}
	}
	// Determinism.
	g2 := Gradebook(100, 5, 1)
	if g[50][3].Num != g2[50][3].Num {
		t.Error("same seed should give same data")
	}
	if g3 := Gradebook(100, 5, 2); g3[50][3].Num == g[50][3].Num && g3[51][3].Num == g[51][3].Num && g3[52][3].Num == g[52][3].Num {
		t.Error("different seeds should differ")
	}
}

func TestDemographicsSkew(t *testing.T) {
	d := Demographics(3000, 3)
	if len(d) != 3001 || len(d[0]) != 3 {
		t.Fatalf("shape = %d x %d", len(d), len(d[0]))
	}
	counts := map[string]int{}
	for _, row := range d[1:] {
		counts[row[1].Str]++
	}
	if counts["ug"] < counts["ms"] || counts["ms"] < counts["phd"] || counts["phd"] == 0 {
		t.Errorf("group skew wrong: %v", counts)
	}
}

func TestMoviesDataset(t *testing.T) {
	m := MoviesDataset(200, 5, 7)
	if len(m.Movies) != 200 || len(m.Movies2Actors) != 1000 {
		t.Fatalf("sizes = %d, %d", len(m.Movies), len(m.Movies2Actors))
	}
	if len(m.Actors) != 50 {
		t.Errorf("actors = %d", len(m.Actors))
	}
	// Every credit references an existing movie and actor; no duplicate
	// (movie, actor) pairs.
	seen := map[[2]int]bool{}
	for _, credit := range m.Movies2Actors {
		mid, aid := int(credit[0].Num), int(credit[1].Num)
		if mid < 1 || mid > 200 || aid < 1 || aid > len(m.Actors) {
			t.Fatalf("dangling credit %v", credit)
		}
		k := [2]int{mid, aid}
		if seen[k] {
			t.Fatalf("duplicate credit %v", k)
		}
		seen[k] = true
	}
	// Tiny datasets still get an actor pool.
	tiny := MoviesDataset(4, 2, 1)
	if len(tiny.Actors) != 10 {
		t.Errorf("tiny actor pool = %d", len(tiny.Actors))
	}
}

func TestGridsAndSparseCells(t *testing.T) {
	g := NumericGrid(20, 4, 5)
	if len(g) != 20 || len(g[0]) != 4 || g[0][0].Kind != sheet.KindNumber {
		t.Error("NumericGrid shape wrong")
	}
	w := WideRows(10, 6, 5)
	if len(w) != 10 || w[3][0].Num != 4 {
		t.Error("WideRows id column wrong")
	}
	cells := SparseCells(500, 10000, 50, 9)
	if len(cells) != 500 {
		t.Fatalf("SparseCells = %d", len(cells))
	}
	for a := range cells {
		if a.Row < 0 || a.Row >= 10000 || a.Col < 0 || a.Col >= 50 {
			t.Fatalf("cell out of region: %v", a)
		}
	}
}
