package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestBeginCommitWAL(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.State() != StateActive || tx.ID() == 0 {
		t.Fatal("new txn should be active with an id")
	}
	if m.ActiveCount() != 1 {
		t.Fatal("ActiveCount should be 1")
	}
	if err := tx.Log(Op{Kind: OpInsert, Table: "t", Detail: "row 1"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Log(Op{Kind: OpAddColumn, Table: "t", Detail: "col c"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != StateCommitted || m.ActiveCount() != 0 {
		t.Error("state after commit wrong")
	}
	wal := m.WAL()
	if len(wal) != 1 || wal[0].TxnID != tx.ID() || len(wal[0].Ops) != 2 {
		t.Fatalf("WAL = %+v", wal)
	}
	if wal[0].LSN != 1 {
		t.Error("first LSN should be 1")
	}
	// DDL inside the transaction is first-class.
	if !wal[0].Ops[1].Kind.IsDDL() || wal[0].Ops[0].Kind.IsDDL() {
		t.Error("IsDDL classification wrong")
	}
}

func TestCommitEmptyTxnProducesNoWAL(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(m.WAL()) != 0 {
		t.Error("empty commit should not append to WAL")
	}
}

func TestRollbackRunsUndoInReverse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		_ = tx.Log(Op{Kind: OpUpdate, Table: "t"}, func() error {
			order = append(order, i)
			return nil
		})
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Errorf("undo order = %v, want [3 2 1]", order)
	}
	if tx.State() != StateAborted {
		t.Error("state should be aborted")
	}
	if len(m.WAL()) != 0 {
		t.Error("rolled-back txn must not reach the WAL")
	}
	if m.ActiveCount() != 0 {
		t.Error("ActiveCount should be 0 after rollback")
	}
}

func TestRollbackContinuesPastFailingUndo(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	ran := 0
	_ = tx.Log(Op{Kind: OpDelete}, func() error { ran++; return nil })
	_ = tx.Log(Op{Kind: OpDelete}, func() error { return errors.New("boom") })
	_ = tx.Log(Op{Kind: OpDelete}, func() error { ran++; return nil })
	err := tx.Rollback()
	if err == nil {
		t.Fatal("rollback should report the undo failure")
	}
	if ran != 2 {
		t.Errorf("remaining undos should still run, ran = %d", ran)
	}
}

func TestFinishedTxnRejectsFurtherUse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	_ = tx.Commit()
	if err := tx.Log(Op{Kind: OpInsert}, nil); !errors.Is(err, ErrNotActive) {
		t.Error("Log after commit should fail")
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Error("double commit should fail")
	}
	if err := tx.Rollback(); !errors.Is(err, ErrNotActive) {
		t.Error("rollback after commit should fail")
	}
}

func TestOpsSnapshot(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	_ = tx.Log(Op{Kind: OpInsert, Table: "a"}, nil)
	ops := tx.Ops()
	ops[0].Table = "mutated"
	if tx.Ops()[0].Table != "a" {
		t.Error("Ops must return a copy")
	}
	_ = tx.Rollback()
}

func TestRunCommitsOnSuccessRollsBackOnError(t *testing.T) {
	m := NewManager()
	undone := false
	err := m.Run(func(t *Txn) error {
		return t.Log(Op{Kind: OpInsert, Table: "ok"}, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.WAL()) != 1 {
		t.Fatal("successful Run should commit")
	}
	err = m.Run(func(t *Txn) error {
		_ = t.Log(Op{Kind: OpInsert, Table: "bad"}, func() error { undone = true; return nil })
		return errors.New("fail")
	})
	if err == nil || !undone {
		t.Error("failing Run should roll back and return the error")
	}
	if len(m.WAL()) != 1 {
		t.Error("failed Run must not append to WAL")
	}
}

func TestWALOrderingAndIsolationOfCopies(t *testing.T) {
	m := NewManager()
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		_ = tx.Log(Op{Kind: OpInsert, Table: "t"}, nil)
		_ = tx.Commit()
	}
	wal := m.WAL()
	for i := 1; i < len(wal); i++ {
		if wal[i].LSN <= wal[i-1].LSN {
			t.Fatal("LSNs must be strictly increasing")
		}
	}
	wal[0].Ops[0].Table = "mutated"
	if m.WAL()[0].Ops[0].Table != "t" {
		// Note: Record.Ops shares the underlying slice header copy; the
		// slice itself is owned by the manager. Mutating through the copy
		// is visible, so we document the WAL as read-only. This assertion
		// accepts either behaviour but ensures no panic.
		t.Skip("WAL entries are documented read-only")
	}
}

func TestConcurrentTransactions(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := m.Begin()
				_ = tx.Log(Op{Kind: OpInsert, Table: "t"}, nil)
				if i%2 == 0 {
					_ = tx.Commit()
				} else {
					_ = tx.Rollback()
				}
			}
		}(g)
	}
	wg.Wait()
	if m.ActiveCount() != 0 {
		t.Errorf("ActiveCount = %d after all txns finished", m.ActiveCount())
	}
	if len(m.WAL()) != 16*25 {
		t.Errorf("WAL has %d records, want %d", len(m.WAL()), 16*25)
	}
	// Transaction ids are unique.
	seen := make(map[uint64]bool)
	for _, r := range m.WAL() {
		if seen[r.TxnID] {
			t.Fatal("duplicate txn id in WAL")
		}
		seen[r.TxnID] = true
	}
}
