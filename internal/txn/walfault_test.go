package txn

import (
	"errors"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// A failed WAL flush/fsync must disable the log: the commit that hit it
// fails with a classified error, and later commits report the latched
// failure instead of retrying the fsync (fsync-gate).
func TestWALDisabledAfterSyncFailure(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "book.wal")
	mgr := NewManager()
	if _, err := mgr.RecoverFileVFS(ffs, path); err != nil {
		t.Fatalf("recover: %v", err)
	}
	commit := func() error {
		return mgr.Run(func(tx *Txn) error {
			return tx.Log(Op{Kind: OpSQL, Detail: "INSERT", Args: []string{"INSERT"}}, nil)
		})
	}
	if err := commit(); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	ffs.SetFault(vfs.Fault{Kind: vfs.OpSync, Err: syscall.EIO})
	err := commit()
	if err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("faulted commit = %v, want ErrIO", err)
	}
	// The fault was single-shot; a retried commit could flush successfully,
	// but the latch must refuse it.
	err = commit()
	if err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("post-fault commit = %v, want latched ErrIO", err)
	}
	if !strings.Contains(err.Error(), "fsync-gate") {
		t.Fatalf("post-fault commit = %q, want fsync-gate mention", err)
	}
	if err := mgr.TruncateThrough(99); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("TruncateThrough on disabled WAL = %v, want latched ErrIO", err)
	}
	// Close still closes the file and reports the latched failure once.
	if err := mgr.Close(); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("Close = %v, want latched ErrIO", err)
	}

	// Reopen with a clean filesystem. The acknowledged first commit must be
	// recovered; the faulted one was flushed but never fsynced, so it may
	// or may not survive — both are legal outcomes for an unacknowledged
	// commit. Never more than those two.
	re := NewManager()
	recs, err := re.RecoverFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) < 1 || len(recs) > 2 {
		t.Fatalf("recovered %d records, want 1 or 2", len(recs))
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
}

// A failed compaction before the rename leaves the old log fully intact and
// usable.
func TestWALCompactionFailureKeepsOldLog(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "book.wal")
	mgr := NewManager()
	if _, err := mgr.RecoverFileVFS(ffs, path); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := mgr.Run(func(tx *Txn) error {
			return tx.Log(Op{Kind: OpSQL, Detail: "INSERT", Args: []string{"INSERT"}}, nil)
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// Fail the compaction target's sync; records 2..3 survive above the
	// watermark, so the tmp-file path runs.
	ffs.SetFault(vfs.Fault{Kind: vfs.OpSync, PathSuffix: ".compact", Err: syscall.EIO})
	if err := mgr.TruncateThrough(1); err == nil || !errors.Is(err, dberr.ErrIO) {
		t.Fatalf("compaction = %v, want ErrIO", err)
	}
	// Nothing durable was touched: the next commit still works.
	if err := mgr.Run(func(tx *Txn) error {
		return tx.Log(Op{Kind: OpSQL, Detail: "INSERT", Args: []string{"INSERT"}}, nil)
	}); err != nil {
		t.Fatalf("commit after failed compaction: %v", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re := NewManager()
	recs, err := re.RecoverFile(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4", len(recs))
	}
	if err := re.Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
}
