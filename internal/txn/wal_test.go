package txn

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func commitOps(t *testing.T, m *Manager, ops ...Op) {
	t.Helper()
	if err := m.Run(func(tx *Txn) error {
		for _, op := range ops {
			if err := tx.Log(op, nil); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	m := NewManager()
	m.AttachLog(&buf)
	commitOps(t, m, Op{Kind: OpCellSet, Table: "", Detail: "Sheet1!A1", Args: []string{"Sheet1", "A1", "42"}})
	commitOps(t, m,
		Op{Kind: OpSQL, Detail: "ddl", Args: []string{"CREATE TABLE t (a INT)"}},
		Op{Kind: OpInsert, Table: "t", Args: []string{"t", "N1"}},
	)
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}

	re := NewManager()
	recs, valid, err := re.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(buf.Len()) {
		t.Errorf("valid = %d, want %d", valid, buf.Len())
	}
	if !reflect.DeepEqual(recs, m.WAL()) {
		t.Errorf("replayed records differ:\n got %#v\nwant %#v", recs, m.WAL())
	}
	// The recovered manager continues the LSN sequence instead of reusing it.
	commitOps(t, re, Op{Kind: OpCellSet, Args: []string{"Sheet1", "B1", "x"}})
	wal := re.WAL()
	if got := wal[len(wal)-1].LSN; got != recs[len(recs)-1].LSN+1 {
		t.Errorf("post-replay LSN = %d, want %d", got, recs[len(recs)-1].LSN+1)
	}
}

func TestWALEmptyLog(t *testing.T) {
	recs, valid, err := NewManager().Replay(bytes.NewReader(nil))
	if err != nil || valid != 0 || len(recs) != 0 {
		t.Fatalf("Replay(empty) = %v, %d, %v", recs, valid, err)
	}
}

// walBytes returns a log with n committed single-op records.
func walBytes(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	m := NewManager()
	m.AttachLog(&buf)
	for i := 0; i < n; i++ {
		commitOps(t, m, Op{Kind: OpCellSet, Args: []string{"Sheet1", "A1", "payload-payload-payload"}})
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWALTornTailIsTruncated(t *testing.T) {
	full := walBytes(t, 2)
	frameLen := len(full) / 2
	// Cut the log mid-way through the second frame's payload, then also
	// mid-way through its header: both are torn tails, not corruption.
	for _, cut := range []int{frameLen + frameHeaderSize + 3, frameLen + 3} {
		recs, valid, err := NewManager().Replay(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 1 {
			t.Fatalf("cut %d: recovered %d records, want 1", cut, len(recs))
		}
		if valid != int64(frameLen) {
			t.Errorf("cut %d: valid = %d, want %d", cut, valid, frameLen)
		}
	}
}

func TestWALChecksumMismatchRejected(t *testing.T) {
	full := walBytes(t, 2)
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0xFF // flip a payload byte of the final frame
	_, _, err := NewManager().Replay(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("Replay(corrupt) err = %v, want ErrCorruptLog", err)
	}
}

func TestDecodeRecordsStrict(t *testing.T) {
	full := walBytes(t, 1)
	recs, err := DecodeRecords(full)
	if err != nil || len(recs) != 1 {
		t.Fatalf("DecodeRecords = %v, %v", recs, err)
	}
	if _, err := DecodeRecords(full[:len(full)-2]); !errors.Is(err, ErrCorruptLog) {
		t.Errorf("DecodeRecords(torn) err = %v, want ErrCorruptLog", err)
	}
}

func TestWALGroupCommitBatchesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m := NewManager()
	m.AttachLog(f)
	m.SetGroupCommit(3)
	for i := 0; i < 2; i++ {
		commitOps(t, m, Op{Kind: OpCellSet, Args: []string{"Sheet1", "A1", "v"}})
	}
	if info, _ := os.Stat(path); info.Size() != 0 {
		t.Fatalf("log flushed before the group filled: %d bytes", info.Size())
	}
	commitOps(t, m, Op{Kind: OpCellSet, Args: []string{"Sheet1", "A1", "v"}})
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("third commit did not flush the group")
	}
	recs, _, err := NewManager().Replay(bytes.NewReader(mustRead(t, path)))
	if err != nil || len(recs) != 3 {
		t.Fatalf("replay after group commit: %d records, %v", len(recs), err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecoverFileTruncatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recover.wal")
	full := walBytes(t, 2)
	torn := append(append([]byte(nil), full...), 0xDE, 0xAD, 0xBE) // torn third frame
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewManager()
	recs, err := m.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if info, _ := os.Stat(path); info.Size() != int64(len(full)) {
		t.Errorf("torn tail not truncated: size %d, want %d", info.Size(), len(full))
	}
	// New commits append cleanly after the recovered prefix.
	commitOps(t, m, Op{Kind: OpSQL, Args: []string{"DELETE FROM t"}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	recs2, _, err := NewManager().Replay(bytes.NewReader(mustRead(t, path)))
	if err != nil || len(recs2) != 3 {
		t.Fatalf("replay after append: %d records, %v", len(recs2), err)
	}
	if recs2[2].LSN != recs2[1].LSN+1 {
		t.Errorf("appended LSN = %d, want %d", recs2[2].LSN, recs2[1].LSN+1)
	}
}

func TestResetLogClearsDurableState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reset.wal")
	m := NewManager()
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	commitOps(t, m, Op{Kind: OpCellSet, Args: []string{"Sheet1", "A1", "1"}})
	if info, _ := os.Stat(path); info.Size() == 0 {
		t.Fatal("commit not written")
	}
	if err := m.ResetLog(); err != nil {
		t.Fatal(err)
	}
	if info, _ := os.Stat(path); info.Size() != 0 {
		t.Errorf("ResetLog left %d bytes", info.Size())
	}
	if len(m.WAL()) != 0 {
		t.Error("ResetLog left in-memory records")
	}
	commitOps(t, m, Op{Kind: OpCellSet, Args: []string{"Sheet1", "A2", "2"}})
	recs, _, err := NewManager().Replay(bytes.NewReader(mustRead(t, path)))
	if err != nil || len(recs) != 1 {
		t.Fatalf("replay after reset: %d records, %v", len(recs), err)
	}
}

// TestTruncateThroughKeepsTail: compaction through a watermark drops covered
// records but preserves — durably — everything committed above it.
func TestTruncateThroughKeepsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	m := NewManager()
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	commit := func(detail string) uint64 {
		if err := m.Run(func(tx *Txn) error {
			return tx.Log(Op{Kind: OpInsert, Detail: detail}, nil)
		}); err != nil {
			t.Fatal(err)
		}
		return m.LastLSN()
	}
	commit("a")
	watermark := commit("b")
	commit("c")
	commit("d")
	if m.LogSize() == 0 {
		t.Fatal("LogSize did not track appends")
	}
	if err := m.TruncateThrough(watermark); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	re := NewManager()
	recs, err := re.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(recs) != 2 || recs[0].Ops[0].Detail != "c" || recs[1].Ops[0].Detail != "d" {
		t.Fatalf("recovered tail = %+v, want exactly c,d", recs)
	}
	for _, rec := range recs {
		if rec.LSN <= watermark {
			t.Fatalf("record %q kept an LSN below the watermark", rec.Ops[0].Detail)
		}
	}
}

// TestTruncateThroughRepeatedCompactions: the compaction rename must keep
// landing at the original WAL path. (A regression here once left the second
// compaction renaming onto the temp path, freezing the real log and losing
// every append after it.)
func TestTruncateThroughRepeatedCompactions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.wal")
	m := NewManager()
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	commit := func(detail string) uint64 {
		if err := m.Run(func(tx *Txn) error {
			return tx.Log(Op{Kind: OpInsert, Detail: detail}, nil)
		}); err != nil {
			t.Fatal(err)
		}
		return m.LastLSN()
	}
	for round := 0; round < 3; round++ {
		w := commit(fmt.Sprintf("covered-%d", round))
		commit(fmt.Sprintf("tail-%d", round))
		// Each round's watermark covers everything before it, so after the
		// final compaction exactly one record survives — at the original
		// path, not wherever the previous rename's handle pointed.
		if err := m.TruncateThrough(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	re := NewManager()
	recs, err := re.RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(recs) != 1 || recs[0].Ops[0].Detail != "tail-2" {
		t.Fatalf("recovered %+v, want exactly [tail-2]", recs)
	}
}
