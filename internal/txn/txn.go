// Package txn provides the transaction layer of the embedded relational
// engine: begin/commit/rollback with logical undo, and an append-only
// write-ahead log of committed work.
//
// The paper points out that in stock relational systems a schema change "is
// considered as 'data definition language' and generally cannot participate
// in transactions". DataSpread's engine therefore treats DDL (ADD/DROP
// COLUMN, CREATE/DROP TABLE) as ordinary logged, undoable operations so a
// spreadsheet interaction that mixes schema and data edits can be applied or
// rolled back atomically.
//
// dslint:errdomain
// dslint:vfsonly
package txn

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// OpKind classifies a logged operation.
type OpKind string

// Operation kinds. DDL kinds participate in transactions exactly like DML.
const (
	OpInsert      OpKind = "insert"
	OpUpdate      OpKind = "update"
	OpDelete      OpKind = "delete"
	OpAddColumn   OpKind = "add_column"
	OpDropColumn  OpKind = "drop_column"
	OpCreateTable OpKind = "create_table"
	OpDropTable   OpKind = "drop_table"
	OpCellSet     OpKind = "cell_set"
)

// Command kinds logged by the core durability layer: each record replays a
// user-level command against a recovered workbook (see core.OpenFile).
const (
	OpCellValue   OpKind = "cell_value"   // typed literal cell write
	OpSQL         OpKind = "sql"          // single SQL statement
	OpSQLScript   OpKind = "sql_script"   // semicolon-separated SQL script
	OpAddSheet    OpKind = "add_sheet"    // create a sheet
	OpImportTable OpKind = "import_table" // DBTABLE binding at an anchor
	OpBindQuery   OpKind = "bind_query"   // DBSQL binding at an anchor
	OpExportRange OpKind = "export_range" // range -> table export
)

// IsDDL reports whether the operation kind is a schema operation.
func (k OpKind) IsDDL() bool {
	switch k {
	case OpAddColumn, OpDropColumn, OpCreateTable, OpDropTable:
		return true
	}
	return false
}

// Op is one logical operation within a transaction.
type Op struct {
	Kind  OpKind
	Table string
	// Detail is a human-readable description used by diagnostics and the
	// WAL dump (e.g. "row 42", "column score NUMERIC").
	Detail string
	// Args carries the machine-readable arguments needed to re-apply the
	// operation during recovery (WAL replay). Nil for operations that are
	// logged for diagnostics only.
	Args []string
}

// Record is a committed WAL entry.
type Record struct {
	LSN   uint64
	TxnID uint64
	Ops   []Op
}

// State is the lifecycle state of a transaction.
type State int

const (
	// StateActive means the transaction can accept more operations.
	StateActive State = iota
	// StateCommitted means Commit succeeded.
	StateCommitted
	// StateAborted means Rollback ran (successfully or not).
	StateAborted
)

// ErrNotActive is returned when operating on a finished transaction.
var ErrNotActive = errors.New("txn: transaction is not active")

// Txn is a single transaction. It is not safe for concurrent use by multiple
// goroutines; the engine runs one writer at a time.
type Txn struct {
	id    uint64
	mgr   *Manager
	state State
	ops   []Op
	undo  []func() error
}

// Manager creates transactions and owns the WAL. By default the log is an
// in-memory slice; AttachLog (or RecoverFile) adds a durable append-only sink
// that every committed record is serialized to (see wal.go).
type Manager struct {
	mu      sync.Mutex
	nextTxn uint64
	nextLSN uint64
	wal     []Record
	active  int64

	// Durable log state (wal.go). All guarded by mu.
	sink      io.Writer
	bw        *bufio.Writer
	fs        vfs.FS   // filesystem the log lives on (RecoverFileVFS)
	logFile   vfs.File // owned durable log handle
	logPath   string   // path the log lives at (stable across compaction renames)
	syncEvery int
	pending   int
	logBytes  int64 // bytes of framed records in the durable log

	// ioErr latches the first append/flush/fsync failure. A failed fsync
	// may have dropped the very pages it covered (fsync-gate), so the log
	// is disabled rather than retried: every later append or sync reports
	// this error until the workbook is reopened.
	ioErr error
}

// NewManager creates a transaction manager with an empty WAL.
func NewManager() *Manager {
	return &Manager{nextTxn: 1, nextLSN: 1}
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.nextTxn
	m.nextTxn++
	m.mu.Unlock()
	atomic.AddInt64(&m.active, 1)
	return &Txn{id: id, mgr: m, state: StateActive}
}

// ActiveCount returns the number of transactions that have begun but not yet
// committed or rolled back.
func (m *Manager) ActiveCount() int {
	return int(atomic.LoadInt64(&m.active))
}

// WAL returns a copy of the committed log in commit order.
func (m *Manager) WAL() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, len(m.wal))
	copy(out, m.wal)
	return out
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// State returns the transaction state.
func (t *Txn) State() State { return t.state }

// Ops returns the operations logged so far.
func (t *Txn) Ops() []Op {
	out := make([]Op, len(t.ops))
	copy(out, t.ops)
	return out
}

// Log records an operation and its compensating undo action. The undo
// actions are applied in reverse order on Rollback. A nil undo is allowed
// for operations that need no compensation (e.g. reads promoted to the log
// for auditing).
func (t *Txn) Log(op Op, undo func() error) error {
	if t.state != StateActive {
		return ErrNotActive
	}
	t.ops = append(t.ops, op)
	if undo != nil {
		t.undo = append(t.undo, undo)
	}
	return nil
}

// Commit appends the transaction's operations to the WAL and finishes the
// transaction. Committing an empty transaction is a no-op that still
// transitions the state.
func (t *Txn) Commit() error {
	if t.state != StateActive {
		return ErrNotActive
	}
	t.state = StateCommitted
	atomic.AddInt64(&t.mgr.active, -1)
	if len(t.ops) == 0 {
		return nil
	}
	t.mgr.mu.Lock()
	defer t.mgr.mu.Unlock()
	rec := Record{LSN: t.mgr.nextLSN, TxnID: t.id, Ops: append([]Op(nil), t.ops...)}
	t.mgr.nextLSN++
	t.mgr.wal = append(t.mgr.wal, rec)
	return t.mgr.appendDurableLocked(rec)
}

// Rollback applies the registered undo actions in reverse order. If any undo
// fails the remaining ones are still attempted and the first error is
// returned; the transaction always ends in StateAborted.
func (t *Txn) Rollback() error {
	if t.state != StateActive {
		return ErrNotActive
	}
	t.state = StateAborted
	atomic.AddInt64(&t.mgr.active, -1)
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("txn %d: undo %d failed: %w", t.id, i, err)
		}
	}
	return firstErr
}

// Run executes fn inside a fresh transaction: if fn returns an error the
// transaction is rolled back and the error returned; otherwise it is
// committed.
func (m *Manager) Run(fn func(t *Txn) error) error {
	t := m.Begin()
	if err := fn(t); err != nil {
		if rbErr := t.Rollback(); rbErr != nil {
			return fmt.Errorf("%w (rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return t.Commit()
}
