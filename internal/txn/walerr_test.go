package txn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
)

// TestErrCorruptLogClassification pins the sentinel taxonomy: every WAL
// corruption error must satisfy errors.Is for both the package-level
// ErrCorruptLog and the cross-package dberr.ErrCorrupt it wraps, so callers
// outside txn can classify recovery failures without importing this package's
// sentinel.
func TestErrCorruptLogClassification(t *testing.T) {
	if !errors.Is(ErrCorruptLog, dberr.ErrCorrupt) {
		t.Fatal("ErrCorruptLog must wrap dberr.ErrCorrupt")
	}

	frames := EncodeRecords([]Record{{
		LSN:   1,
		TxnID: 1,
		Ops:   []Op{{Kind: OpCellSet, Table: "t", Detail: "row 1"}},
	}})
	// Flip a payload byte so the frame's CRC no longer matches.
	frames[len(frames)-1] ^= 0xFF
	if _, err := DecodeRecords(frames); err == nil {
		t.Fatal("DecodeRecords accepted a frame with a bad checksum")
	} else if !errors.Is(err, ErrCorruptLog) || !errors.Is(err, dberr.ErrCorrupt) {
		t.Fatalf("checksum error = %v, want errors.Is ErrCorruptLog and dberr.ErrCorrupt", err)
	}
}

// TestRecoverFileTruncatesCorruptTail verifies that RecoverFile treats a
// corrupt tail as end-of-log (the committed prefix survives, the tail is
// truncated) rather than propagating ErrCorruptLog — and that the manager is
// left attached and usable, i.e. the error-join rewrite of the failure paths
// did not disturb the success path.
func TestRecoverFileTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	good := EncodeRecords([]Record{{
		LSN:   1,
		TxnID: 1,
		Ops:   []Op{{Kind: OpCellSet, Table: "t", Detail: "row 1"}},
	}})
	bad := EncodeRecords([]Record{{
		LSN:   2,
		TxnID: 2,
		Ops:   []Op{{Kind: OpCellSet, Table: "t", Detail: "row 2"}},
	}})
	bad[len(bad)-1] ^= 0xFF
	if err := os.WriteFile(path, append(append([]byte{}, good...), bad...), 0o644); err != nil {
		t.Fatal(err)
	}

	m := NewManager()
	recs, err := m.RecoverFile(path)
	if err != nil {
		t.Fatalf("RecoverFile: %v", err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("recovered %v, want the single committed record with LSN 1", recs)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len(good)) {
		t.Fatalf("log size after recovery = %d, want the valid prefix %d", info.Size(), len(good))
	}
}
