// Durable write-ahead log: committed Records serialized to an append-only
// sink as length-prefixed, CRC32-checksummed frames.
//
// Frame layout (all little endian):
//
//	[0:4] payload length (uint32)
//	[4:8] CRC32 (IEEE) of the payload
//	[8:]  payload: one Record in the uvarint encoding below
//
// Record payload: LSN, TxnID, op count as uvarints, then per op the Kind,
// Table, Detail strings and the Args list, each string as uvarint length +
// bytes.
//
// Replay tolerates a torn final frame (a crash mid-append): the valid prefix
// is returned and the tail is discarded; RecoverFile additionally truncates
// the file back to the valid prefix so appends resume cleanly. A checksum or
// decode failure on a fully present frame is corruption and is rejected with
// ErrCorruptLog.
package txn

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/storage/vfs"
)

// ErrCorruptLog is returned when a fully present WAL frame fails its
// checksum or cannot be decoded.
var ErrCorruptLog = fmt.Errorf("txn: corrupt WAL record: %w", dberr.ErrCorrupt)

const (
	frameHeaderSize = 8
	// maxFrameSize bounds a single record; a longer length prefix is
	// treated as corruption rather than an allocation request.
	maxFrameSize = 64 << 20
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("string length %d exceeds remaining payload: %w", n, ErrCorruptLog)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func encodeRecord(rec Record) []byte {
	buf := binary.AppendUvarint(nil, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.TxnID)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		buf = appendString(buf, string(op.Kind))
		buf = appendString(buf, op.Table)
		buf = appendString(buf, op.Detail)
		buf = binary.AppendUvarint(buf, uint64(len(op.Args)))
		for _, a := range op.Args {
			buf = appendString(buf, a)
		}
	}
	return buf
}

func decodeRecord(payload []byte) (Record, error) {
	r := bytes.NewReader(payload)
	var rec Record
	var err error
	if rec.LSN, err = binary.ReadUvarint(r); err != nil {
		return rec, err
	}
	if rec.TxnID, err = binary.ReadUvarint(r); err != nil {
		return rec, err
	}
	nOps, err := binary.ReadUvarint(r)
	if err != nil {
		return rec, err
	}
	if nOps > uint64(r.Len()) {
		return rec, fmt.Errorf("op count %d exceeds remaining payload: %w", nOps, ErrCorruptLog)
	}
	for i := uint64(0); i < nOps; i++ {
		var op Op
		kind, err := readString(r)
		if err != nil {
			return rec, err
		}
		op.Kind = OpKind(kind)
		if op.Table, err = readString(r); err != nil {
			return rec, err
		}
		if op.Detail, err = readString(r); err != nil {
			return rec, err
		}
		nArgs, err := binary.ReadUvarint(r)
		if err != nil {
			return rec, err
		}
		if nArgs > uint64(r.Len()) {
			return rec, fmt.Errorf("arg count %d exceeds remaining payload: %w", nArgs, ErrCorruptLog)
		}
		for j := uint64(0); j < nArgs; j++ {
			a, err := readString(r)
			if err != nil {
				return rec, err
			}
			op.Args = append(op.Args, a)
		}
		rec.Ops = append(rec.Ops, op)
	}
	if r.Len() != 0 {
		return rec, fmt.Errorf("%d trailing bytes after record: %w", r.Len(), ErrCorruptLog)
	}
	return rec, nil
}

func appendFrame(buf []byte, rec Record) []byte {
	payload := encodeRecord(rec)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// EncodeRecords serializes records as a contiguous sequence of WAL frames.
// Core checkpoints use it to store a compacted log snapshot in a single page.
func EncodeRecords(recs []Record) []byte {
	var buf []byte
	for _, rec := range recs {
		buf = appendFrame(buf, rec)
	}
	return buf
}

// DecodeRecords parses a frame sequence produced by EncodeRecords. Unlike
// Replay it is strict: a torn tail is corruption, because the input is a
// fully written snapshot, not an append-only log.
func DecodeRecords(b []byte) ([]Record, error) {
	recs, valid, err := readFrames(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	if valid != int64(len(b)) {
		return nil, fmt.Errorf("%w: torn frame at offset %d", ErrCorruptLog, valid)
	}
	return recs, nil
}

// readFrames reads frames until EOF (clean stop), a torn tail (clean stop at
// the last full frame), or corruption (error). It returns the records and the
// byte length of the valid prefix.
func readFrames(r io.Reader) ([]Record, int64, error) {
	var recs []Record
	var valid int64
	for {
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil // end of log or torn header
			}
			return recs, valid, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxFrameSize {
			return recs, valid, fmt.Errorf("%w: frame length %d", ErrCorruptLog, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil // torn payload
			}
			return recs, valid, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			return recs, valid, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorruptLog, valid)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, valid, fmt.Errorf("%w: %v", ErrCorruptLog, err)
		}
		recs = append(recs, rec)
		valid += frameHeaderSize + int64(length)
	}
}

// AttachLog sets the durable sink for committed records. Subsequent commits
// append a frame per record; frames are buffered and flushed (plus fsynced
// when the sink supports it) according to the group-commit policy, which
// defaults to every commit.
func (m *Manager) AttachLog(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink = w
	m.bw = bufio.NewWriter(w)
	if m.syncEvery < 1 {
		m.syncEvery = 1
	}
	m.pending = 0
}

// SetGroupCommit makes the log flush and sync only every n commits (group
// commit): intermediate commits stay buffered, trading a bounded window of
// recent commits for fewer fsyncs. n < 1 restores sync-on-every-commit.
func (m *Manager) SetGroupCommit(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 1 {
		n = 1
	}
	m.syncEvery = n
}

// Sync forces buffered frames to the sink and, when the sink supports it
// (e.g. *os.File), to stable storage.
// dslint:critical
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushSyncLocked()
}

type syncer interface{ Sync() error }

// walDisabledLocked reports the latched I/O failure that disabled the log.
// Per the fsync-gate rule a failed flush or fsync must not be retried: the
// kernel may already have dropped the dirty pages it covered, so a retry
// that succeeds would misreport lost commits as durable.
func (m *Manager) walDisabledLocked() error {
	return fmt.Errorf("txn: WAL disabled after an earlier I/O failure (fsync-gate): %w", m.ioErr)
}

func (m *Manager) flushSyncLocked() error {
	if m.bw == nil {
		return nil
	}
	if m.ioErr != nil {
		return m.walDisabledLocked()
	}
	if err := m.bw.Flush(); err != nil {
		m.ioErr = err
		return err
	}
	if s, ok := m.sink.(syncer); ok {
		if err := s.Sync(); err != nil {
			m.ioErr = err
			return err
		}
	}
	m.pending = 0
	return nil
}

// appendDurableLocked writes one committed record to the durable sink
// (caller holds m.mu). With no sink attached it is a no-op.
// dslint:critical
func (m *Manager) appendDurableLocked(rec Record) error {
	if m.bw == nil {
		return nil
	}
	if m.ioErr != nil {
		return m.walDisabledLocked()
	}
	frame := appendFrame(nil, rec)
	if _, err := m.bw.Write(frame); err != nil {
		m.ioErr = err
		return err
	}
	m.logBytes += int64(len(frame))
	m.pending++
	if m.pending >= m.syncEvery {
		return m.flushSyncLocked()
	}
	return nil
}

// Replay reads committed records from a serialized log, re-populating the
// in-memory WAL and advancing the LSN/transaction counters past the highest
// recovered values. A torn final frame (crash mid-append) terminates the
// replay cleanly; a checksum or decode failure is returned as ErrCorruptLog,
// with the records and state of the valid prefix preserved so crash-recovery
// callers can continue from it. The returned offset is the byte length of
// the valid prefix.
func (m *Manager) Replay(r io.Reader) ([]Record, int64, error) {
	recs, valid, err := readFrames(r)
	m.mu.Lock()
	for _, rec := range recs {
		m.wal = append(m.wal, rec)
		if rec.LSN >= m.nextLSN {
			m.nextLSN = rec.LSN + 1
		}
		if rec.TxnID >= m.nextTxn {
			m.nextTxn = rec.TxnID + 1
		}
	}
	m.mu.Unlock()
	return recs, valid, err
}

// RecoverFile opens (creating if necessary) the log file at path, replays it,
// truncates any torn or corrupt tail, and attaches the file as the durable
// sink so new commits append after the recovered prefix. The manager owns the
// file until Close.
//
// Unlike Replay, detected corruption (a checksum mismatch or undecodable
// frame, e.g. after a partial disk write or media bit flip) is not an error
// here: the first invalid frame marks the end of the log, everything before
// it is the committed prefix, and the tail is truncated away. This is the
// standard crash-recovery reading of an append-only log — each frame's CRC
// covers its payload, so the longest valid prefix is exactly the committed
// history.
func (m *Manager) RecoverFile(path string) ([]Record, error) {
	return m.RecoverFileVFS(vfs.OS(), path)
}

// RecoverFileVFS is RecoverFile over an injectable filesystem; the manager
// keeps using it for later compaction renames.
func (m *Manager) RecoverFileVFS(fsys vfs.FS, path string) ([]Record, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open WAL %s: %w", path, err)
	}
	recs, valid, err := m.Replay(f)
	if err != nil && !errors.Is(err, ErrCorruptLog) {
		return nil, errors.Join(fmt.Errorf("txn: replay WAL %s: %w", path, err), f.Close())
	}
	if err := f.Truncate(valid); err != nil {
		return nil, errors.Join(fmt.Errorf("txn: truncate WAL %s: %w", path, err), f.Close())
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return nil, errors.Join(fmt.Errorf("txn: seek WAL %s: %w", path, err), f.Close())
	}
	m.AttachLog(f)
	m.mu.Lock()
	m.fs = fsys
	m.logFile = f
	m.logPath = path
	m.logBytes = valid
	m.mu.Unlock()
	return recs, nil
}

// LogSize returns the current byte size of the durable log: recovered prefix
// plus frames appended since. The background checkpointer uses it as its
// trigger threshold.
func (m *Manager) LogSize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logBytes
}

// TruncateThrough discards every committed record with LSN <= lsn from the
// log, keeping the tail. Checkpoints call it with their watermark so records
// committed while the checkpoint was writing (concurrent appends above the
// watermark) survive the compaction.
//
// When a tail survives, the compaction is crash-safe: the tail is written
// and synced to a sibling file, then renamed over the log, so a crash at
// any instant leaves either the full old log or the complete compacted tail
// — never a window where committed records above the watermark exist in
// neither place (an in-place truncate-and-rewrite would have exactly that
// window).
// dslint:critical
func (m *Manager) TruncateThrough(lsn uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ioErr != nil {
		return m.walDisabledLocked()
	}
	kept := make([]Record, 0, len(m.wal))
	for _, rec := range m.wal {
		if rec.LSN > lsn {
			kept = append(kept, rec)
		}
	}
	m.wal = kept
	if m.logFile == nil {
		if m.bw != nil {
			m.bw = bufio.NewWriter(m.sink)
			m.pending = 0
		}
		return nil
	}
	if len(kept) == 0 {
		// Nothing above the watermark: a plain truncate cannot lose
		// anything the checkpoint does not already cover.
		return m.resetLogFileLocked()
	}
	// m.logPath, not m.logFile.Name(): after a previous compaction the
	// handle was opened at the temp path, and renaming onto Name() would
	// quietly move the log away from where recovery reads it.
	path := m.logPath
	tmp := path + ".compact"
	fsys := m.fs
	if fsys == nil {
		fsys = vfs.OS()
	}
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("txn: compact WAL: %w", err)
	}
	// Failures before the rename leave the old log fully intact, so they
	// are reported but do not disable the WAL: nothing durable was touched.
	var bytes int64
	for _, rec := range kept {
		frame := appendFrame(nil, rec)
		if _, err := f.Write(frame); err != nil {
			rmErr := fsys.Remove(tmp)
			_ = rmErr
			return errors.Join(fmt.Errorf("txn: compact WAL: %w", err), f.Close())
		}
		bytes += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		rmErr := fsys.Remove(tmp)
		_ = rmErr
		return errors.Join(fmt.Errorf("txn: sync compacted WAL: %w", err), f.Close())
	}
	if err := fsys.Rename(tmp, path); err != nil {
		rmErr := fsys.Remove(tmp)
		_ = rmErr
		return errors.Join(fmt.Errorf("txn: swap compacted WAL: %w", err), f.Close())
	}
	// Adopt the new file; the old inode dies with its handle.
	old := m.logFile
	m.logFile = f
	m.sink = f
	m.bw = bufio.NewWriter(f)
	m.pending = 0
	m.logBytes = bytes
	return old.Close()
}

// LastLSN returns the LSN of the most recently committed record (0 when
// nothing has committed). Checkpoints store it as a watermark so recovery can
// skip log records the snapshot already covers.
func (m *Manager) LastLSN() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextLSN - 1
}

// AdvanceLSN raises the next LSN past min so future commits never collide
// with records a checkpoint has absorbed.
func (m *Manager) AdvanceLSN(min uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.nextLSN <= min {
		m.nextLSN = min + 1
	}
}

// resetLogFileLocked empties the owned log file and re-arms the writer
// (caller holds m.mu and has already pruned m.wal). A failure leaves the
// file in an unknown intermediate state, so it disables the WAL.
func (m *Manager) resetLogFileLocked() error {
	if err := m.logFile.Truncate(0); err != nil {
		m.ioErr = err
		return err
	}
	if _, err := m.logFile.Seek(0, io.SeekStart); err != nil {
		m.ioErr = err
		return err
	}
	m.bw = bufio.NewWriter(m.logFile)
	m.pending = 0
	m.logBytes = 0
	if err := m.logFile.Sync(); err != nil {
		m.ioErr = err
		return err
	}
	return nil
}

// ResetLog discards the durable log contents (after a checkpoint has made
// them redundant) and clears the in-memory WAL. LSNs keep increasing so
// later records never collide with checkpointed ones.
func (m *Manager) ResetLog() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wal = nil
	if m.logFile == nil {
		if m.bw != nil {
			m.bw = bufio.NewWriter(m.sink)
			m.pending = 0
		}
		return nil
	}
	return m.resetLogFileLocked()
}

// Close flushes and syncs the durable log and closes the underlying file
// when the manager owns one (RecoverFile). Safe to call multiple times.
// dslint:critical
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bw == nil {
		return nil
	}
	err := m.flushSyncLocked()
	if m.logFile != nil {
		if cErr := m.logFile.Close(); err == nil {
			err = cErr
		}
		m.logFile = nil
	}
	m.bw = nil
	m.sink = nil
	return err
}
