// Package dberr defines the engine's error taxonomy: typed sentinel errors
// that every layer (catalog, sqlexec, core, the public dataspread package)
// wraps into its failures so embedders can branch with errors.Is instead of
// matching message strings. The public package re-exports these values; the
// internal packages attach them with fmt.Errorf("...: %w", ...) so messages
// keep their context while the category stays programmatically testable.
package dberr

import (
	"errors"
	"fmt"
)

// Schema and catalog errors.
var (
	// ErrTableNotFound reports a reference to a table the catalog does not
	// know. catalog.ErrNoTable matches it through errors.Is.
	ErrTableNotFound = errors.New("table not found")
	// ErrTableExists reports CREATE TABLE of an existing table (without IF
	// NOT EXISTS).
	ErrTableExists = errors.New("table already exists")
	// ErrColumnNotFound reports a reference to an unknown column.
	ErrColumnNotFound = errors.New("column not found")
	// ErrIndexNotFound reports DROP INDEX of an unknown index.
	ErrIndexNotFound = errors.New("index not found")
	// ErrIndexExists reports CREATE INDEX of an existing index name.
	ErrIndexExists = errors.New("index already exists")
	// ErrColumnExists reports ADD COLUMN or RENAME COLUMN onto a column
	// name the table already has.
	ErrColumnExists = errors.New("column already exists")
	// ErrInvalidSchema reports a schema definition the catalog rejects:
	// empty table/column/index names, duplicate columns, a table with no
	// columns, or dropping the only column.
	ErrInvalidSchema = errors.New("invalid schema definition")
	// ErrSheetNotFound reports a reference to an unknown spreadsheet sheet.
	ErrSheetNotFound = errors.New("sheet not found")
)

// Constraint violations.
var (
	// ErrUniqueViolation reports a duplicate primary key or a duplicate
	// value under a UNIQUE index.
	ErrUniqueViolation = errors.New("unique constraint violation")
	// ErrNotNullViolation reports a NULL value for a NOT NULL column.
	ErrNotNullViolation = errors.New("not-null constraint violation")
	// ErrTypeMismatch reports a value that cannot be coerced to its
	// column's declared type.
	ErrTypeMismatch = errors.New("value does not match column type")
)

// Session, transaction and statement errors.
var (
	// ErrConflict reports an operation that lost to concurrent state it
	// cannot be applied over: opening a second writer on a locked workbook,
	// or committing over a conflicting change.
	ErrConflict = errors.New("conflicting operation")
	// ErrTxOpen reports BEGIN inside an open explicit transaction.
	ErrTxOpen = errors.New("transaction already open")
	// ErrNoTx reports COMMIT/ROLLBACK without an open transaction.
	ErrNoTx = errors.New("no open transaction")
	// ErrParamCount reports an execution whose bound arguments do not match
	// the statement's '?' placeholders.
	ErrParamCount = errors.New("wrong number of bound parameters")
	// ErrClosed reports use of a closed database, statement or row set.
	ErrClosed = errors.New("closed")
	// ErrSyntax reports a statement or expression the engine can parse but
	// not make sense of: unknown operators or functions, wrong argument
	// counts, aggregates outside aggregation, ambiguous references.
	ErrSyntax = errors.New("invalid statement")
	// ErrUnsupported reports a request outside the engine's capabilities:
	// streaming a non-SELECT, spreadsheet constructs without a spreadsheet
	// context, checkpointing a non-durable workbook.
	ErrUnsupported = errors.New("unsupported operation")
	// ErrValue reports an expression evaluated over values outside its
	// domain: arithmetic on non-numbers, NOT of a non-boolean, division by
	// zero. Distinct from ErrTypeMismatch, which is about storing values
	// into typed columns.
	ErrValue = errors.New("invalid value for operation")
)

// Serving-tier errors.
var (
	// ErrAuth reports a failed network handshake: an unknown tenant, a bad
	// token, or a protocol version the server does not speak.
	ErrAuth = errors.New("authentication failed")
	// ErrOverloaded reports a query rejected by admission control: the
	// server (or the caller's tenant) is at its in-flight query cap and the
	// bounded wait queue is full or the wait timed out. The request was not
	// executed; retrying after backoff is safe.
	ErrOverloaded = errors.New("server overloaded")
)

// Storage and durability errors.
var (
	// ErrCorrupt reports on-disk state that fails validation: bad value or
	// column encodings in the WAL, unrecognised workbook pages, invalid
	// root slots. The WAL's own ErrCorruptLog matches it through errors.Is.
	ErrCorrupt = errors.New("corrupt on-disk state")
	// ErrInternal reports a broken engine invariant — always a bug, never
	// a user error.
	ErrInternal = errors.New("internal invariant violation")
	// ErrIO reports a storage I/O failure: a read, write, sync, truncate or
	// close on the page heap, the WAL or a root slot that the operating
	// system rejected. Every error surfaced through the vfs layer matches
	// it through errors.Is.
	ErrIO = errors.New("storage I/O failure")
	// ErrDiskFull is the ENOSPC subclass of ErrIO: the device is out of
	// space. errors.Is(err, ErrIO) also holds for every ErrDiskFull.
	ErrDiskFull = fmt.Errorf("disk full: %w", ErrIO)
	// ErrReadOnly reports a write rejected because the workbook degraded to
	// read-only mode after an I/O failure: committed state remains readable,
	// but no further mutations are accepted until the workbook is reopened.
	ErrReadOnly = errors.New("workbook is read-only")
)
