package window

import (
	"sync"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
)

func TestDefaultsAndSize(t *testing.T) {
	m := NewManager(0, -1)
	r, c := m.Size()
	if r != DefaultRows || c != DefaultCols {
		t.Errorf("Size = %d,%d", r, c)
	}
	m2 := NewManager(20, 5)
	r, c = m2.Size()
	if r != 20 || c != 5 {
		t.Errorf("Size = %d,%d", r, c)
	}
}

func TestScrollPanAndWindow(t *testing.T) {
	m := NewManager(50, 10)
	// Before any scroll, the window starts at A1.
	w := m.Window("Sheet1")
	if w.Start != sheet.Addr(0, 0) || w.Rows() != 50 || w.Cols() != 10 {
		t.Errorf("initial window = %v", w)
	}
	m.ScrollTo("Sheet1", sheet.Addr(100, 2))
	w = m.Window("sheet1") // case-insensitive
	if w.Start != sheet.Addr(100, 2) || w.End != sheet.Addr(149, 11) {
		t.Errorf("window after scroll = %v", w)
	}
	m.Pan("Sheet1", 25, -1)
	w = m.Window("Sheet1")
	if w.Start != sheet.Addr(125, 1) {
		t.Errorf("window after pan = %v", w)
	}
	// Panning above the origin clamps.
	m.Pan("Sheet1", -1000, -1000)
	if m.Window("Sheet1").Start != sheet.Addr(0, 0) {
		t.Error("pan should clamp at the origin")
	}
	if m.PanCount() != 3 {
		t.Errorf("PanCount = %d", m.PanCount())
	}
}

func TestContainsAndVisible(t *testing.T) {
	m := NewManager(10, 4)
	m.ScrollTo("Data", sheet.Addr(50, 0))
	if !m.Contains("data", sheet.Addr(55, 3)) {
		t.Error("cell inside window should be visible")
	}
	if m.Contains("Data", sheet.Addr(49, 0)) || m.Contains("Data", sheet.Addr(60, 0)) {
		t.Error("cells outside window should not be visible")
	}
	m.ScrollTo("Other", sheet.Addr(0, 0))
	vis := m.Visible()
	if len(vis) != 2 {
		t.Fatalf("Visible returned %d sheets", len(vis))
	}
	if vis["data"].Start != sheet.Addr(50, 0) {
		t.Errorf("visible[data] = %v", vis["data"])
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager(50, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.ScrollTo("s", sheet.Addr(i, g))
				_ = m.Window("s")
				_ = m.Visible()
				_ = m.Contains("s", sheet.Addr(i, g))
			}
		}(g)
	}
	wg.Wait()
}
