// Package window implements the paper's "current window" notion: the portion
// of each sheet the user is currently looking at. Databases have no such
// concept; DataSpread tracks it explicitly so that the storage and compute
// layers can prioritise the visible pane (fetch-on-demand while panning,
// visible-first recomputation).
package window

import (
	"strings"
	"sync"

	"github.com/dataspread/dataspread/internal/sheet"
)

// DefaultRows and DefaultCols approximate a laptop-screen spreadsheet pane.
const (
	DefaultRows = 50
	DefaultCols = 10
)

// Manager tracks the visible window of every sheet. It is safe for
// concurrent use.
type Manager struct {
	mu      sync.RWMutex
	rows    int
	cols    int
	windows map[string]sheet.Address // top-left corner per sheet (lower-cased name)
	pans    uint64
}

// NewManager creates a window manager with the given pane size. Non-positive
// dimensions fall back to the defaults.
func NewManager(rows, cols int) *Manager {
	if rows <= 0 {
		rows = DefaultRows
	}
	if cols <= 0 {
		cols = DefaultCols
	}
	return &Manager{rows: rows, cols: cols, windows: make(map[string]sheet.Address)}
}

// Size returns the pane dimensions.
func (m *Manager) Size() (rows, cols int) { return m.rows, m.cols }

func key(name string) string { return strings.ToLower(name) }

// ScrollTo moves the window of a sheet so its top-left corner is at the given
// address (clamped to non-negative coordinates).
func (m *Manager) ScrollTo(sheetName string, topLeft sheet.Address) {
	if topLeft.Row < 0 {
		topLeft.Row = 0
	}
	if topLeft.Col < 0 {
		topLeft.Col = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.windows[key(sheetName)] = topLeft
	m.pans++
}

// Pan shifts the window of a sheet by the given number of rows and columns.
func (m *Manager) Pan(sheetName string, dRows, dCols int) {
	m.mu.Lock()
	cur := m.windows[key(sheetName)]
	m.mu.Unlock()
	m.ScrollTo(sheetName, cur.Offset(dRows, dCols))
}

// Window returns the visible range of a sheet.
func (m *Manager) Window(sheetName string) sheet.Range {
	m.mu.RLock()
	defer m.mu.RUnlock()
	tl := m.windows[key(sheetName)]
	return sheet.Range{Start: tl, End: tl.Offset(m.rows-1, m.cols-1)}
}

// Contains reports whether the address is currently visible on the sheet.
func (m *Manager) Contains(sheetName string, a sheet.Address) bool {
	return m.Window(sheetName).Contains(a)
}

// Visible returns the visible range of every sheet that has been scrolled at
// least once plus sheets explicitly asked about; it is the provider the
// compute engine uses for prioritisation.
func (m *Manager) Visible() map[string]sheet.Range {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]sheet.Range, len(m.windows))
	for name, tl := range m.windows {
		out[name] = sheet.Range{Start: tl, End: tl.Offset(m.rows-1, m.cols-1)}
	}
	return out
}

// PanCount returns how many scroll operations have happened (experiment
// instrumentation).
func (m *Manager) PanCount() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pans
}
