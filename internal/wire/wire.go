// Package wire defines dataspreadd's network protocol: a compact, versioned,
// length-prefixed binary framing shared by the server (internal/server) and
// the pure-Go client (client). A connection is a sequence of frames
//
//	[ type: 1 byte ][ payload length: 4 bytes big-endian ][ payload ]
//
// and every conversation is client-initiated: the client sends a request
// frame, the server answers with one or more response frames. The only frame
// a client may send while a response stream is in flight is MsgCancel, which
// the server's reader goroutine handles out of band.
//
// Payloads are built from four primitives — unsigned varints, length-
// prefixed strings, engine values and raw bytes — via Buf (writer) and
// Reader (error-latching reader). Engine values travel as a 1-byte kind tag
// followed by the kind's natural encoding, mirroring sheet.Value exactly.
//
// Errors cross the wire as (code, message) pairs where the code identifies a
// dberr sentinel; RemoteError re-attaches the sentinel on the client side so
// errors.Is keeps working across the network boundary.
//
// dslint:errdomain
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
)

// ProtocolVersion is the protocol revision this package speaks. The client
// announces its version in MsgHello; a server that cannot speak it rejects
// the handshake with CodeAuth.
const ProtocolVersion = 1

// MaxFrameLen bounds a frame payload (16 MiB): a peer announcing more is
// protocol corruption, not a large result — row streams are chunked into
// many small MsgRowBatch frames well below this.
const MaxFrameLen = 16 << 20

// MsgType identifies a frame. Client-to-server types occupy 0x01-0x7f,
// server-to-client types 0x81-0xff.
type MsgType uint8

// Client-to-server frames.
const (
	// MsgHello opens a connection: version, tenant, token.
	MsgHello MsgType = 0x01
	// MsgPrepare registers a statement under a client-chosen id: id, sql.
	MsgPrepare MsgType = 0x02
	// MsgExecute runs a prepared statement: id, mode (ExecModeExec or
	// ExecModeQuery), positional values, named values.
	MsgExecute MsgType = 0x03
	// MsgCloseStmt drops a prepared statement: id.
	MsgCloseStmt MsgType = 0x04
	// MsgBegin / MsgCommit / MsgRollback control the session transaction.
	MsgBegin    MsgType = 0x05
	MsgCommit   MsgType = 0x06
	MsgRollback MsgType = 0x07
	// MsgCancel aborts the in-flight query of this session. It is the only
	// frame a client may send mid-stream.
	MsgCancel MsgType = 0x08
	// MsgPing checks liveness; the server answers MsgPong.
	MsgPing MsgType = 0x09
	// MsgStats asks for the server's metrics snapshot as JSON.
	MsgStats MsgType = 0x0a
	// MsgGoodbye announces an orderly client disconnect.
	MsgGoodbye MsgType = 0x0b
)

// Server-to-client frames.
const (
	// MsgHelloOK accepts a handshake: version, server banner, flags.
	MsgHelloOK MsgType = 0x81
	// MsgPrepareOK acknowledges MsgPrepare: id, parameter names by slot.
	MsgPrepareOK MsgType = 0x82
	// MsgRowHeader starts a query result: column names.
	MsgRowHeader MsgType = 0x83
	// MsgRowBatch carries up to RowBatchSize rows of a result.
	MsgRowBatch MsgType = 0x84
	// MsgDone ends a successful request: affected-row count (execs) or
	// streamed-row count (queries).
	MsgDone MsgType = 0x85
	// MsgError ends a request with a classified failure: code, message. On
	// a query it may arrive after MsgRowHeader and any number of
	// MsgRowBatch frames — a mid-stream failure terminates the stream with
	// the typed error instead of silently truncating it.
	MsgError MsgType = 0x86
	// MsgPong answers MsgPing.
	MsgPong MsgType = 0x87
	// MsgStatsReply answers MsgStats with a JSON document.
	MsgStatsReply MsgType = 0x88
)

// Execute modes.
const (
	// ExecModeExec materialises the outcome server-side and returns only
	// the affected-row count (DML, DDL).
	ExecModeExec = 0
	// ExecModeQuery streams the result as RowHeader / RowBatch* / Done.
	ExecModeQuery = 1
)

// HelloOK flag bits.
const (
	// FlagReadOnly reports that the tenant's workbook has degraded to
	// read-only mode (DB.Health non-nil at handshake time).
	FlagReadOnly = 1 << 0
)

// RowBatchSize is the row count at which the server flushes a MsgRowBatch.
const RowBatchSize = 128

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", classifyIO(err))
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: write frame payload: %w", classifyIO(err))
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing MaxFrameLen. io.EOF surfaces
// unwrapped when the peer closed cleanly between frames.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read frame header: %w", classifyIO(err))
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d: %w", n, MaxFrameLen, dberr.ErrCorrupt)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read frame payload: %w", classifyIO(err))
	}
	return MsgType(hdr[0]), payload, nil
}

// classifyIO wraps a transport error under dberr.ErrIO so network failures
// classify like every other I/O failure.
func classifyIO(err error) error {
	return fmt.Errorf("%v: %w", err, dberr.ErrIO)
}

// Buf builds a frame payload.
type Buf struct {
	b []byte
}

// Bytes returns the encoded payload.
func (b *Buf) Bytes() []byte { return b.b }

// Reset clears the buffer for reuse.
func (b *Buf) Reset() { b.b = b.b[:0] }

// Uvarint appends an unsigned varint.
func (b *Buf) Uvarint(v uint64) { b.b = binary.AppendUvarint(b.b, v) }

// Byte appends one byte.
func (b *Buf) Byte(v byte) { b.b = append(b.b, v) }

// String appends a length-prefixed string.
func (b *Buf) String(s string) {
	b.Uvarint(uint64(len(s)))
	b.b = append(b.b, s...)
}

// Value appends an engine value: a kind tag, then the kind's encoding.
func (b *Buf) Value(v sheet.Value) {
	b.Byte(byte(v.Kind))
	switch v.Kind {
	case sheet.KindNumber:
		var num [8]byte
		binary.BigEndian.PutUint64(num[:], math.Float64bits(v.Num))
		b.b = append(b.b, num[:]...)
	case sheet.KindString:
		b.String(v.Str)
	case sheet.KindBool:
		if v.Bool {
			b.Byte(1)
		} else {
			b.Byte(0)
		}
	case sheet.KindError:
		b.String(v.Err)
	}
}

// Reader decodes a frame payload. The first malformed read latches an
// ErrCorrupt-classified error; subsequent reads return zero values, so a
// decoder can run straight through and check Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader wraps a payload.
func NewReader(payload []byte) *Reader { return &Reader{b: payload} }

// Err returns the first decode failure, classified under dberr.ErrCorrupt.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or malformed %s: %w", what, dberr.ErrCorrupt)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// Value reads an engine value.
func (r *Reader) Value() sheet.Value {
	kind := sheet.Kind(r.Byte())
	if r.err != nil {
		return sheet.Empty()
	}
	switch kind {
	case sheet.KindEmpty:
		return sheet.Empty()
	case sheet.KindNumber:
		if len(r.b) < 8 {
			r.fail("number value")
			return sheet.Empty()
		}
		bits := binary.BigEndian.Uint64(r.b)
		r.b = r.b[8:]
		return sheet.Number(math.Float64frombits(bits))
	case sheet.KindString:
		return sheet.String_(r.String())
	case sheet.KindBool:
		return sheet.Bool_(r.Byte() != 0)
	case sheet.KindError:
		return sheet.ErrorValue(r.String())
	default:
		r.fail("value kind")
		return sheet.Empty()
	}
}

// Remaining reports how many undecoded bytes are left.
func (r *Reader) Remaining() int { return len(r.b) }
