package wire

import (
	"context"
	"errors"
	"fmt"

	"github.com/dataspread/dataspread/internal/dberr"
)

// Error codes. Every failure a server sends identifies the dberr sentinel
// the original error wrapped, so the client can re-attach it and
// errors.Is classifies identically on both sides of the wire. CodeUnknown
// carries failures outside the taxonomy (message only). Codes are part of
// the protocol: never renumber, only append.
const (
	CodeUnknown uint16 = iota
	CodeTableNotFound
	CodeTableExists
	CodeColumnNotFound
	CodeIndexNotFound
	CodeIndexExists
	CodeColumnExists
	CodeInvalidSchema
	CodeSheetNotFound
	CodeUniqueViolation
	CodeNotNullViolation
	CodeTypeMismatch
	CodeConflict
	CodeTxOpen
	CodeNoTx
	CodeParamCount
	CodeClosed
	CodeSyntax
	CodeUnsupported
	CodeValue
	CodeCorrupt
	CodeInternal
	CodeDiskFull
	CodeIO
	CodeReadOnly
	CodeAuth
	CodeOverloaded
	CodeCanceled
	CodeDeadline
)

// codeTable orders sentinels most-specific first: ErrDiskFull wraps ErrIO,
// so it must be probed before ErrIO when classifying.
var codeTable = []struct {
	code uint16
	err  error
}{
	{CodeTableNotFound, dberr.ErrTableNotFound},
	{CodeTableExists, dberr.ErrTableExists},
	{CodeColumnNotFound, dberr.ErrColumnNotFound},
	{CodeIndexNotFound, dberr.ErrIndexNotFound},
	{CodeIndexExists, dberr.ErrIndexExists},
	{CodeColumnExists, dberr.ErrColumnExists},
	{CodeInvalidSchema, dberr.ErrInvalidSchema},
	{CodeSheetNotFound, dberr.ErrSheetNotFound},
	{CodeUniqueViolation, dberr.ErrUniqueViolation},
	{CodeNotNullViolation, dberr.ErrNotNullViolation},
	{CodeTypeMismatch, dberr.ErrTypeMismatch},
	{CodeConflict, dberr.ErrConflict},
	{CodeTxOpen, dberr.ErrTxOpen},
	{CodeNoTx, dberr.ErrNoTx},
	{CodeParamCount, dberr.ErrParamCount},
	{CodeClosed, dberr.ErrClosed},
	{CodeSyntax, dberr.ErrSyntax},
	{CodeUnsupported, dberr.ErrUnsupported},
	{CodeValue, dberr.ErrValue},
	{CodeCorrupt, dberr.ErrCorrupt},
	{CodeInternal, dberr.ErrInternal},
	{CodeReadOnly, dberr.ErrReadOnly},
	{CodeAuth, dberr.ErrAuth},
	{CodeOverloaded, dberr.ErrOverloaded},
	{CodeDiskFull, dberr.ErrDiskFull},
	{CodeIO, dberr.ErrIO},
	{CodeCanceled, context.Canceled},
	{CodeDeadline, context.DeadlineExceeded},
}

// CodeFor classifies an error into its wire code: the first (most specific)
// sentinel the error wraps, or CodeUnknown.
func CodeFor(err error) uint16 {
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return CodeUnknown
}

// SentinelFor returns the sentinel a code names, or nil for CodeUnknown and
// codes from a newer protocol revision.
func SentinelFor(code uint16) error {
	for _, e := range codeTable {
		if e.code == code {
			return e.err
		}
	}
	return nil
}

// RemoteError is a server-reported failure re-materialised on the client: it
// carries the wire code and the server's message, and unwraps to the coded
// sentinel so errors.Is works across the network boundary.
type RemoteError struct {
	Code uint16
	Msg  string
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// Unwrap returns the sentinel the code names (nil for CodeUnknown).
func (e *RemoteError) Unwrap() error { return SentinelFor(e.Code) }

// EncodeError builds a MsgError payload from an error.
func EncodeError(err error) []byte {
	var b Buf
	b.Uvarint(uint64(CodeFor(err)))
	b.String(err.Error())
	return b.Bytes()
}

// DecodeError parses a MsgError payload into a RemoteError.
func DecodeError(payload []byte) error {
	r := NewReader(payload)
	code := r.Uvarint()
	msg := r.String()
	if err := r.Err(); err != nil {
		return fmt.Errorf("wire: malformed error frame: %w", err)
	}
	return &RemoteError{Code: uint16(code), Msg: msg}
}
