package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"

	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/sheet"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xab}, 1<<16)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, MsgType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgType(i+1) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %d payload %d bytes", i, typ, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{1, 0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, dberr.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []sheet.Value{
		sheet.Empty(),
		sheet.Number(0),
		sheet.Number(-math.Pi),
		sheet.Number(math.Inf(1)),
		sheet.String_(""),
		sheet.String_("héllo\x00world"),
		sheet.Bool_(true),
		sheet.Bool_(false),
		sheet.ErrorValue("#DIV/0!"),
	}
	var b Buf
	for _, v := range vals {
		b.Value(v)
	}
	r := NewReader(b.Bytes())
	for i, want := range vals {
		got := r.Value()
		if got != want {
			t.Fatalf("value %d: got %#v want %#v", i, got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
	// NaN compares by bits, not ==.
	b.Reset()
	b.Value(sheet.Number(math.NaN()))
	if got := NewReader(b.Bytes()).Value(); !math.IsNaN(got.Num) {
		t.Fatalf("NaN round-trip: %#v", got)
	}
}

func TestReaderLatchesMalformedInput(t *testing.T) {
	r := NewReader([]byte{byte(sheet.KindNumber), 1, 2}) // truncated float
	_ = r.Value()
	if err := r.Err(); !errors.Is(err, dberr.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// Subsequent reads stay safe.
	_ = r.String()
	_ = r.Uvarint()
	if err := r.Err(); !errors.Is(err, dberr.ErrCorrupt) {
		t.Fatalf("latched err = %v", err)
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []error{
		fmt.Errorf("t1: %w", dberr.ErrTableNotFound),
		fmt.Errorf("over: %w", dberr.ErrOverloaded),
		fmt.Errorf("auth: %w", dberr.ErrAuth),
		fmt.Errorf("ro: %w", dberr.ErrReadOnly),
		fmt.Errorf("div: %w", dberr.ErrValue),
		fmt.Errorf("full: %w", dberr.ErrDiskFull),
		fmt.Errorf("io: %w", dberr.ErrIO),
		fmt.Errorf("ctx: %w", context.Canceled),
	}
	for _, orig := range cases {
		back := DecodeError(EncodeError(orig))
		var re *RemoteError
		if !errors.As(back, &re) {
			t.Fatalf("%v: not a RemoteError: %#v", orig, back)
		}
		if re.Msg != orig.Error() {
			t.Errorf("message %q -> %q", orig.Error(), re.Msg)
		}
		// The decoded error classifies identically.
		for _, sentinel := range []error{
			dberr.ErrTableNotFound, dberr.ErrOverloaded, dberr.ErrAuth,
			dberr.ErrReadOnly, dberr.ErrValue, dberr.ErrDiskFull, dberr.ErrIO,
			context.Canceled,
		} {
			if errors.Is(orig, sentinel) != errors.Is(back, sentinel) {
				t.Errorf("%v: classification of %v diverges across the wire", orig, sentinel)
			}
		}
	}
	// DiskFull must keep its ErrIO super-class through the wire.
	back := DecodeError(EncodeError(fmt.Errorf("x: %w", dberr.ErrDiskFull)))
	if !errors.Is(back, dberr.ErrIO) || !errors.Is(back, dberr.ErrDiskFull) {
		t.Fatalf("disk-full classification lost: %v", back)
	}
	// Unknown code: message survives, no sentinel.
	unk := DecodeError(EncodeError(errors.New("weird")))
	if unk.Error() != "weird" {
		t.Fatalf("unknown error message: %q", unk.Error())
	}
}
