// Package dataspread is an embeddable Go reproduction of "DataSpread:
// Unifying Databases and Spreadsheets" (Bendre et al., PVLDB 8(12), VLDB
// 2015 demo): a spreadsheet engine that is a database. This package is the
// public API; the implementation lives under internal/ (see DESIGN.md for
// the module map), runnable examples are under examples/, a
// database/sql driver is in the driver subpackage, and a network client
// for the dataspreadd serving tier is in the client subpackage.
//
// # Opening a workbook
//
//	db := dataspread.New(dataspread.Options{})                    // in-memory
//	db, err := dataspread.OpenFile("wb.ds", dataspread.Options{}) // durable
//	defer db.Close()
//
// File-backed workbooks are durable by default: table and index pages live
// in a single-file page heap behind a page-zero catalog of CRC-protected
// ping-pong root slots, every mutating command is appended to a CRC-framed
// write-ahead log before it returns, and a background goroutine checkpoints
// off the write path with shadow-paged writes, so recovery attaches to
// existing pages and replays only the dirty WAL tail (DESIGN.md
// §Durability). A workbook file admits a single writing process
// (ErrConflict otherwise).
//
// # SQL: prepared statements, streaming rows, cancellation
//
// Statements bind '?' positional placeholders or ':name' named
// parameters — pass plain values for the former and dataspread.Named
// values (in any order) for the latter, mixing both in one call if the
// statement does. A statement is parsed and analyzed once
// (a shared plan cache keyed by text, invalidated by schema changes) and
// bound per execution — including its index access paths, so a prepared
// `WHERE id = ?` keeps the primary-key point lookup with every fresh
// argument:
//
//	stmt, err := db.Prepare("SELECT title FROM movies WHERE year > ?")
//	rows, err := stmt.Query(ctx, 1990) // rows stream as the scan produces them
//	defer rows.Close()
//	for rows.Next() {
//	    var title string
//	    if err := rows.Scan(&title); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The context is polled at scan/join/sort batch boundaries: cancelling a
// query mid-scan returns promptly with context.Canceled. Connections
// (DB.Conn) give each goroutine its own session and explicit-transaction
// state (BEGIN/COMMIT/ROLLBACK). Failures wrap a small sentinel taxonomy —
// ErrTableNotFound, ErrUniqueViolation, ErrParamCount, … — for errors.Is.
//
// Reads are snapshot reads: a scan pins an immutable page epoch and runs
// against frozen page versions without holding the engine lock, so readers
// never block writers (and vice versa) and every query sees a single
// point-in-time state. Large scans, aggregations and joins additionally
// fan out over a morsel-driven worker pool (Options.Workers; default
// GOMAXPROCS, 1 = serial) with results identical to serial execution row
// for row (DESIGN.md §Snapshot Reads & Parallel Execution).
//
// Queries choose their access paths: point, range and IN-list WHERE
// conjuncts on NUMERIC columns ride the primary-key B+-tree or a secondary
// index instead of a filtered full scan, and ORDER BY <indexed col> LIMIT k
// walks the index in order without sorting. Secondary indexes are plain
// SQL —
//
//	CREATE [UNIQUE] INDEX [IF NOT EXISTS] idx_year ON movies (year);
//	DROP INDEX [IF EXISTS] idx_year;
//	EXPLAIN SELECT title FROM movies WHERE year > 1990;
//
// with EXPLAIN reporting the chosen path per FROM source (DESIGN.md
// §Access Paths & Indexes); EXPLAIN of a parameterized statement executed
// with arguments shows the paths those arguments take.
//
// Cold scans skip data: sealed pages carry per-column min/max zone
// summaries, full scans (serial, parallel and streaming) drop pages that
// cannot match pushed predicates before decoding them, and column pages
// dictionary- or delta-compress low-entropy data. Summaries persist with
// checkpoints as an advisory catalog — a torn or corrupt catalog merely
// disables skipping, never changes results (DESIGN.md §Zone Maps &
// Compression); EXPLAIN shows "zone maps: skipped/total" per source.
//
// # The spreadsheet surface
//
// The same DB is a workbook. SetCell enters literals and formulas exactly
// as typing into the grid — including the paper's DBSQL("...") formulas,
// whose SQL may read sheet data positionally through RANGEVALUE(cell) and
// RANGETABLE(range) and whose results spill into the sheet — ExportRange
// turns a sheet region into a relational table (schema inferred), and
// ImportTable binds a table to a region with two-way sync and
// fetch-on-demand windowing for large tables.
//
// # Serving over the network
//
// The same engine serves over TCP: cmd/dataspreadd hosts one workbook
// per tenant behind a compact length-prefixed frame protocol (token
// auth, prepared statements with positional and named binds, streaming
// row batches, transactions, out-of-band cancel), with an LRU pool of
// open workbooks, tenant-then-global admission control and graceful
// drain. The client subpackage is the pure-Go client; errors re-attach
// to the same sentinel taxonomy across the wire, so
// errors.Is(err, dataspread.ErrTableNotFound) keeps working remotely
// (DESIGN.md §Serving Tier, examples/netclient).
//
// # database/sql
//
// Programs that want none of the above can use the standard interfaces:
//
//	import _ "github.com/dataspread/dataspread/driver"
//
//	sqlDB, err := sql.Open("dataspread", "workbook.ds")
//
// The exported surface of this package and driver is golden-checked by
// `make apicheck` (api/public.txt), and the engine's locking, durability
// and cancellation invariants are mechanically enforced by `make lint`,
// which runs the project-specific analyzer suite in internal/lint via
// cmd/dslint (DESIGN.md §Static Analysis).
package dataspread
