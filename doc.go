// Package dataspread is the repository root of a from-scratch Go
// reproduction of "DataSpread: Unifying Databases and Spreadsheets"
// (Bendre et al., PVLDB 8(12), VLDB 2015 demo).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable examples are under examples/, the experiment harness is
// cmd/dsbench, and bench_test.go in this package holds one benchmark per
// reproduced figure/claim (see EXPERIMENTS.md).
package dataspread
