// Package dataspread is the repository root of a from-scratch Go
// reproduction of "DataSpread: Unifying Databases and Spreadsheets"
// (Bendre et al., PVLDB 8(12), VLDB 2015 demo).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable examples are under examples/, the experiment harness is
// cmd/dsbench, and bench_test.go in this package holds one benchmark per
// reproduced figure/claim (see EXPERIMENTS.md).
//
// Storage is durable by default for -file workbooks: internal/storage/pager
// exposes a Backend interface with an in-memory block-count model (Store), a
// single-file 4KiB-page heap (FileStore) and a memory-mapped read variant
// (MmapStore, -mmap) behind the same BufferPool; table and index pages live
// in the workbook file itself, registered in a page-zero catalog of
// CRC-protected ping-pong root slots, so reopening attaches to existing
// pages instead of replaying DML history. internal/txn serializes committed
// records to an append-only, CRC-framed write-ahead log with group commit,
// and a background goroutine checkpoints off the write path with
// shadow-paged writes — a crash mid-checkpoint can never tear the snapshot
// (DESIGN.md §Durability). The cmd/dataspread shell takes -file [-mmap] to
// run against a workbook file.
//
// Queries choose their access paths: point, range and IN-list WHERE
// conjuncts on NUMERIC columns ride the primary-key B+-tree or a secondary
// index instead of a filtered full scan, and ORDER BY <indexed col> LIMIT k
// walks the index in order without sorting. Secondary indexes are plain
// SQL —
//
//	CREATE [UNIQUE] INDEX [IF NOT EXISTS] idx_year ON movies (year);
//	DROP INDEX [IF EXISTS] idx_year;
//	EXPLAIN SELECT title FROM movies WHERE year > 1990;
//
// with EXPLAIN reporting the chosen path per FROM source (DESIGN.md
// §Access Paths & Indexes).
package dataspread
