// Package dataspread is the repository root of a from-scratch Go
// reproduction of "DataSpread: Unifying Databases and Spreadsheets"
// (Bendre et al., PVLDB 8(12), VLDB 2015 demo).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable examples are under examples/, the experiment harness is
// cmd/dsbench, and bench_test.go in this package holds one benchmark per
// reproduced figure/claim (see EXPERIMENTS.md).
//
// Storage is durable when asked to be: internal/storage/pager exposes a
// Backend interface with an in-memory block-count model (Store) and a
// single-file 4KiB-page heap (FileStore) behind the same BufferPool;
// internal/txn serializes committed records to an append-only, CRC-framed
// write-ahead log with group commit; and core.OpenFile/Checkpoint tie the
// two together with snapshot-plus-replay recovery (DESIGN.md §Durability).
// The cmd/dataspread shell takes -file to run against a workbook file.
//
// Queries choose their access paths: point and range WHERE conjuncts on
// NUMERIC columns ride the primary-key B+-tree or a secondary index
// instead of a filtered full scan, and ORDER BY <indexed col> LIMIT k
// walks the index in order without sorting. Secondary indexes are plain
// SQL —
//
//	CREATE [UNIQUE] INDEX [IF NOT EXISTS] idx_year ON movies (year);
//	DROP INDEX [IF EXISTS] idx_year;
//	EXPLAIN SELECT title FROM movies WHERE year > 1990;
//
// with EXPLAIN reporting the chosen path per FROM source (DESIGN.md
// §Access Paths & Indexes).
package dataspread
