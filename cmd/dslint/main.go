// Command dslint is the repo's project-specific multichecker. It loads
// the whole module, runs the four engine-invariant analyzers — lockcheck,
// errwrap, ctxcancel, apistable — applies //lint:ignore suppressions, and
// prints surviving findings in file:line:col form, exiting nonzero when
// any remain. `make lint` runs it alongside go vet; the verify target and
// CI gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspread/dataspread/internal/lint"
	"github.com/dataspread/dataspread/internal/lint/apistable"
	"github.com/dataspread/dataspread/internal/lint/ctxcancel"
	"github.com/dataspread/dataspread/internal/lint/errwrap"
	"github.com/dataspread/dataspread/internal/lint/lockcheck"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to lint")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := []*lint.Analyzer{
		lockcheck.Analyzer,
		errwrap.Analyzer,
		ctxcancel.Analyzer,
		apistable.Analyzer,
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range all {
			if keep[a.Name] {
				analyzers = append(analyzers, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "dslint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(mod, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dslint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		rel := d.Pos.Filename
		if strings.HasPrefix(rel, mod.Dir) {
			rel = strings.TrimPrefix(strings.TrimPrefix(rel, mod.Dir), "/")
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
