// Command dataspreadd serves dataspread workbooks to network clients: a
// multi-tenant serving tier over the embeddable engine. Each tenant is one
// workbook file under -data (<data>/<tenant>.ds), authenticated by a bearer
// token from -tenants, with a bounded LRU of open workbooks, global and
// per-tenant in-flight admission caps, idle-session reaping and per-query
// deadlines. The wire protocol and a Go client live in package client.
//
// Usage:
//
//	dataspreadd -addr :7437 -data /var/lib/dataspread \
//	    -tenants alice:s3cret,bob:hunter2 [-admin 127.0.0.1:7438]
//
// -tenants may also name a file (one tenant:token per line, #-comments) so
// tokens need not appear on the command line. SIGINT/SIGTERM trigger a
// graceful shutdown: the listener closes, in-flight streams finish, then
// workbooks close; a second signal (or -drain-timeout) force-cancels.
// -admin exposes GET /stats (the server's JSON metrics snapshot: active
// sessions, per-tenant query counts, p50/p99 latencies, admission
// rejections, evictions) and GET /healthz on a separate HTTP listener.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dataspread/dataspread/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7437", "TCP listen address for the wire protocol")
		data         = flag.String("data", "", "data root directory (one <tenant>.ds workbook per tenant; required)")
		tenantsFlag  = flag.String("tenants", "", "tenant credentials: comma-separated tenant:token pairs, or a path to a file with one pair per line (required)")
		adminAddr    = flag.String("admin", "", "optional HTTP listen address for /stats and /healthz")
		maxOpen      = flag.Int("max-open", 4, "max resident tenant workbooks (LRU beyond)")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrently executing queries server-wide")
		tenInflight  = flag.Int("tenant-inflight", 8, "max concurrently executing queries per tenant")
		queueWait    = flag.Duration("queue-wait", time.Second, "max time a query waits for an admission slot")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long (0 = never)")
		queryTimeout = flag.Duration("query-timeout", 0, "per-statement execution deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget before force-cancel")
	)
	flag.Parse()
	if *data == "" || *tenantsFlag == "" {
		fmt.Fprintln(os.Stderr, "dataspreadd: -data and -tenants are required")
		flag.Usage()
		os.Exit(2)
	}
	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		die(err)
	}
	if err := os.MkdirAll(*data, 0o755); err != nil {
		die(fmt.Errorf("creating data root: %w", err))
	}
	srv, err := server.New(server.Config{
		DataRoot:       *data,
		Tenants:        tenants,
		MaxOpenDBs:     *maxOpen,
		MaxInflight:    *maxInflight,
		TenantInflight: *tenInflight,
		QueueWait:      *queueWait,
		IdleTimeout:    *idleTimeout,
		QueryTimeout:   *queryTimeout,
	})
	if err != nil {
		die(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "dataspreadd: serving %d tenants from %s on %s\n", len(tenants), *data, ln.Addr())

	var admin *http.Server
	if *adminAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(srv.Stats()); err != nil {
				fmt.Fprintf(os.Stderr, "dataspreadd: /stats: %v\n", err)
			}
		})
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			if _, err := fmt.Fprintln(w, "ok"); err != nil {
				fmt.Fprintf(os.Stderr, "dataspreadd: /healthz: %v\n", err)
			}
		})
		admin = &http.Server{Addr: *adminAddr, Handler: mux}
		go func() {
			fmt.Fprintf(os.Stderr, "dataspreadd: admin endpoint on %s\n", *adminAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dataspreadd: admin: %v\n", err)
			}
		}()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "dataspreadd: %v: draining (up to %v; signal again to force)\n", sig, *drainTimeout)
	case err := <-serveDone:
		if err != nil {
			die(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "dataspreadd: second signal: force-canceling")
		cancel()
	}()
	if admin != nil {
		if err := admin.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dataspreadd: admin shutdown: %v\n", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dataspreadd: shutdown: %v\n", err)
	}
	if err := <-serveDone; err != nil {
		fmt.Fprintf(os.Stderr, "dataspreadd: serve: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "dataspreadd: bye")
}

// parseTenants reads tenant:token pairs from the flag value directly or,
// when the value names a readable file, one pair per line with #-comments.
func parseTenants(spec string) (map[string]string, error) {
	var pairs []string
	if data, err := os.ReadFile(spec); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			pairs = append(pairs, line)
		}
	} else {
		pairs = strings.Split(spec, ",")
	}
	out := make(map[string]string, len(pairs))
	for _, p := range pairs {
		name, token, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok || name == "" || token == "" {
			return nil, fmt.Errorf("malformed tenant credential %q (want tenant:token)", p)
		}
		out[name] = token
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants configured")
	}
	return out, nil
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "dataspreadd: %v\n", err)
	os.Exit(1)
}
