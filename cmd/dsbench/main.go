// Command dsbench is the experiment harness: it regenerates, as printed
// series, every demonstration scenario and quantitative claim of the paper
// (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment prints the same
// rows/series the paper's demonstration implies: who wins, by roughly what
// factor, and where the crossover lies.
//
// Usage:
//
//	dsbench [-scale n] [experiment ...]
//
// Experiments: f2a f2b f2c m1 m2 m3 m4 a1 a2 a3 a4 a5 (default: all).
// -scale multiplies the base workload sizes (1 = quick, 10 = thorough).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dataspread/dataspread/internal/baseline"
	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/index/positional"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/storage/cellstore"
	"github.com/dataspread/dataspread/internal/storage/pager"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

var (
	scale    = flag.Int("scale", 1, "workload scale multiplier")
	jsonOut  = flag.String("json", "", "run the headline benchmark workloads and write results to this JSON file instead of printing experiments")
	serveOut = flag.String("serve", "", "run the serving-tier multi-tenant load benchmark against an in-process dataspreadd and write results to this JSON file")
)

func main() {
	flag.Parse()
	if *serveOut != "" {
		writeServeBench(*serveOut)
		return
	}
	if *jsonOut != "" {
		writeBenchJSON(*jsonOut)
		return
	}
	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"f2a", "f2b", "f2c", "m1", "m2", "m3", "m4", "a1", "a2", "a3", "a4", "a5"}
	}
	runners := map[string]func(){
		"f2a": f2a, "f2b": f2b, "f2c": f2c,
		"m1": m1, "m2": m2, "m3": m3, "m4": m4,
		"a1": a1, "a2": a2, "a3": a3, "a4": a4, "a5": a5,
	}
	for _, name := range experiments {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		run()
		fmt.Println()
	}
}

func header(id, title string) {
	fmt.Printf("=== %s: %s (scale %d) ===\n", id, title, *scale)
}

func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func mustDS(opts core.Options) *core.DataSpread { return core.New(opts) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsbench:", err)
		os.Exit(1)
	}
}

func setCell(ds *core.DataSpread, sheetName, addr, input string) {
	wait, err := ds.SetCell(sheetName, addr, input)
	check(err)
	wait()
}

// --- Figure 2 demonstration scenarios ---

func f2a() {
	header("F2a", "DBSQL querying with RANGEVALUE/RANGETABLE (Figure 2a)")
	fmt.Printf("%-10s %-14s %-14s\n", "movies", "dbsql_spill", "reparam_time")
	for _, movies := range []int{1000 * *scale, 5000 * *scale, 20000 * *scale} {
		ds := mustDS(core.Options{})
		data := datagen.MoviesDataset(movies, 5, 1)
		_, err := ds.QueryScript(`
			CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
			CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
			CREATE TABLE movies2actors (movieid INT, actorid INT);`)
		check(err)
		for _, r := range data.Movies {
			_, err = ds.DB().Insert("movies", r)
			check(err)
		}
		for _, r := range data.Actors {
			_, err = ds.DB().Insert("actors", r)
			check(err)
		}
		for _, r := range data.Movies2Actors {
			_, err = ds.DB().Insert("movies2actors", r)
			check(err)
		}
		setCell(ds, "Sheet1", "B1", "3")
		setCell(ds, "Sheet1", "B2", "1950")
		first := timed(func() {
			setCell(ds, "Sheet1", "B3", `=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
		})
		reparam := timed(func() {
			setCell(ds, "Sheet1", "B1", "5")
			ds.Wait()
		})
		fmt.Printf("%-10d %-14v %-14v\n", movies, first, reparam)
	}
}

func f2b() {
	header("F2b", "Import/export: range -> table with inferred schema (Figure 2b)")
	fmt.Printf("%-10s %-14s %-14s\n", "rows", "export_time", "import_time")
	for _, rows := range []int{500 * *scale, 2000 * *scale, 10000 * *scale} {
		ds := mustDS(core.Options{})
		sh, _ := ds.Book().Sheet("Sheet1")
		sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(rows, 5, 1))
		export := timed(func() {
			_, err := ds.CreateTableFromRange("Sheet1", fmt.Sprintf("A1:G%d", rows+1), "grades", core.ExportOptions{PrimaryKey: []string{"student"}})
			check(err)
		})
		imp := timed(func() {
			_, err := ds.ImportTable("Sheet1", "J1", "grades")
			check(err)
		})
		fmt.Printf("%-10d %-14v %-14v\n", rows, export, imp)
	}
}

func f2c() {
	header("F2c", "Two-way sync: sheet edit -> DB -> dependent DBSQL (Figure 2c)")
	fmt.Printf("%-10s %-16s %-16s\n", "rows", "sheet_edit_sync", "sql_update_sync")
	for _, rows := range []int{1000 * *scale, 5000 * *scale} {
		ds := mustDS(core.Options{})
		_, err := ds.Query("CREATE TABLE inv (sku INT PRIMARY KEY, qty NUMERIC)")
		check(err)
		for i := 0; i < rows; i++ {
			_, err := ds.DB().Insert("inv", []sheet.Value{sheet.Number(float64(i)), sheet.Number(100)})
			check(err)
		}
		_, err = ds.ImportTable("Sheet1", "A1", "inv")
		check(err)
		setCell(ds, "Sheet1", "E1", `=DBSQL("SELECT SUM(qty) FROM inv")`)
		edit := timed(func() { setCell(ds, "Sheet1", "B3", "150"); ds.Wait() })
		sqlUpd := timed(func() {
			_, err := ds.Query("UPDATE inv SET qty = 175 WHERE sku = 10")
			check(err)
			ds.Wait()
		})
		fmt.Printf("%-10d %-16v %-16v\n", rows, edit, sqlUpd)
	}
}

// --- Motivating claims ---

func m1() {
	header("M1", "Interaction latency vs sheet size: naive spreadsheet vs DataSpread window")
	fmt.Printf("%-10s %-18s %-18s\n", "rows", "baseline_window", "dataspread_window")
	for _, rows := range []int{10000 * *scale, 50000 * *scale, 200000 * *scale} {
		// Naive baseline: flat cell map, window probe.
		s := baseline.New()
		s.RecalcOnEdit = false
		for r := 0; r < rows; r++ {
			for c := 0; c < 4; c++ {
				s.SetValue(sheet.Addr(r, c), sheet.Number(float64(r*4+c)))
			}
		}
		baseTime := timed(func() {
			for i := 0; i < 20; i++ {
				start := (i * 7919) % (rows - 60)
				_ = s.Window(sheet.RangeOf(start, 0, start+49, 9))
			}
		}) / 20

		// DataSpread: bound table, window fetched through the positional
		// index on demand.
		ds := mustDS(core.Options{WindowRows: 50, WindowCols: 10, MaterializeAllLimit: 1000})
		_, err := ds.Query("CREATE TABLE big (id INT PRIMARY KEY, v1 NUMERIC, v2 NUMERIC, v3 NUMERIC)")
		check(err)
		for i := 0; i < rows; i++ {
			_, err := ds.DB().Insert("big", []sheet.Value{sheet.Number(float64(i)), sheet.Number(1), sheet.Number(2), sheet.Number(3)})
			check(err)
		}
		_, err = ds.ImportTable("Sheet1", "A1", "big")
		check(err)
		dsTime := timed(func() {
			for i := 0; i < 20; i++ {
				start := (i * 7919) % (rows - 60)
				check(ds.ScrollTo("Sheet1", sheet.Addr(start, 0).String()))
				_, err := ds.VisibleValues("Sheet1")
				check(err)
			}
		}) / 20
		fmt.Printf("%-10d %-18v %-18v\n", rows, baseTime, dsTime)
	}
}

func m2() {
	header("M2", "Sub-select rows (score > 90 in any assignment): manual scan vs DBSQL")
	fmt.Printf("%-10s %-14s %-14s\n", "students", "baseline", "dataspread")
	for _, n := range []int{1000 * *scale, 5000 * *scale, 20000 * *scale} {
		s := baseline.New()
		s.RecalcOnEdit = false
		grades := datagen.Gradebook(n, 5, 1)
		for r, row := range grades {
			for c, v := range row {
				s.SetValue(sheet.Addr(r, c), v)
			}
		}
		baseTime := timed(func() {
			_ = s.FilterRows(n+1, []int{1, 2, 3, 4, 5}, func(v sheet.Value) bool {
				f, ok := v.AsNumber()
				return ok && f > 90
			})
		})
		ds := mustDS(core.Options{})
		sh, _ := ds.Book().Sheet("Sheet1")
		sh.SetValues(sheet.Addr(0, 0), grades)
		dsTime := timed(func() {
			_, err := ds.Query(fmt.Sprintf("SELECT student FROM RANGETABLE(A1:G%d) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90", n+1))
			check(err)
		})
		fmt.Printf("%-10d %-14v %-14v\n", n, baseTime, dsTime)
	}
}

func m3() {
	header("M3", "Join grades with demographics + average per group: per-row lookup vs DBSQL join")
	fmt.Printf("%-10s %-14s %-14s\n", "students", "baseline", "dataspread")
	for _, n := range []int{1000 * *scale, 5000 * *scale, 20000 * *scale} {
		grades := datagen.Gradebook(n, 5, 1)
		demo := datagen.Demographics(n, 2)
		s := baseline.New()
		s.RecalcOnEdit = false
		for r, row := range grades {
			for c, v := range row {
				s.SetValue(sheet.Addr(r, c), v)
			}
		}
		lookup := make(map[string]string, n)
		for _, row := range demo[1:] {
			lookup[row[0].Str] = row[1].Str
		}
		baseTime := timed(func() { _ = s.GroupAverage(n+1, 0, 6, lookup) })

		ds := mustDS(core.Options{})
		sh, _ := ds.Book().Sheet("Sheet1")
		sh.SetValues(sheet.Addr(0, 0), grades)
		ds.AddSheet("Demo")
		dsh, _ := ds.Book().Sheet("Demo")
		dsh.SetValues(sheet.Addr(0, 0), demo)
		dsTime := timed(func() {
			_, err := ds.Query(fmt.Sprintf("SELECT grp, AVG(grade) FROM RANGETABLE(A1:G%d) NATURAL JOIN RANGETABLE(Demo!A1:C%d) GROUP BY grp", n+1, n+1))
			check(err)
		})
		fmt.Printf("%-10d %-14v %-14v\n", n, baseTime, dsTime)
	}
}

func m4() {
	header("M4", "Continuously appended external data: per-append sync cost")
	fmt.Printf("%-10s %-12s %-18s\n", "existing", "appends", "time_per_append")
	for _, existing := range []int{10000 * *scale, 50000 * *scale} {
		ds := mustDS(core.Options{WindowRows: 50, WindowCols: 5, MaterializeAllLimit: 1000})
		_, err := ds.Query("CREATE TABLE feed (id INT PRIMARY KEY, v NUMERIC)")
		check(err)
		for i := 0; i < existing; i++ {
			_, err := ds.DB().Insert("feed", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i))})
			check(err)
		}
		_, err = ds.ImportTable("Sheet1", "A1", "feed")
		check(err)
		const appends = 500
		total := timed(func() {
			for i := 0; i < appends; i++ {
				_, err := ds.DB().Insert("feed", []sheet.Value{sheet.Number(float64(existing + i)), sheet.Number(1)})
				check(err)
			}
		})
		fmt.Printf("%-10d %-12d %-18v\n", existing, appends, total/appends)
	}
}

// --- Architecture ablations ---

func a1() {
	header("A1", "Schema change vs tuple update: blocks touched per layout")
	fmt.Printf("%-10s %-8s %-22s %-22s\n", "rows", "layout", "addcol_blocks_written", "rowupdate_blocks")
	for _, rows := range []int{20000 * *scale, 100000 * *scale} {
		data := datagen.WideRows(rows, 12, 1)
		for _, layout := range []string{"row", "column", "hybrid"} {
			ps := pager.NewStore()
			pool := pager.NewBufferPool(ps, 0)
			var store tablestore.Store
			switch layout {
			case "row":
				store = tablestore.NewRowStore(pool, 12)
			case "column":
				store = tablestore.NewColStore(pool, 12)
			default:
				store = tablestore.NewHybridStore(pool, 12, tablestore.WithGroupSize(4))
			}
			for _, r := range data {
				_, err := store.Insert(r)
				check(err)
			}
			ps.ResetStats()
			check(store.AddColumn(sheet.Number(0)))
			addBlocks := ps.Stats().Writes
			ps.ResetStats()
			wide := make([]sheet.Value, 13)
			for i := range wide {
				wide[i] = sheet.Number(9)
			}
			check(store.Update(tablestore.RowID(rows/2), wide))
			updBlocks := ps.Stats().BlocksTouched()
			fmt.Printf("%-10d %-8s %-22d %-22d\n", rows, layout, addBlocks, updBlocks)
		}
	}
}

func a2() {
	header("A2", "Positional index: window fetch + middle insert vs dense renumbering")
	fmt.Printf("%-10s %-18s %-18s\n", "rows", "positional_index", "dense_renumber")
	for _, n := range []int{100000 * *scale, 500000 * *scale} {
		ix := positional.New()
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(i + 1)
		}
		check(ix.BulkLoad(ids))
		next := uint64(n + 1)
		const ops = 200
		ixTime := timed(func() {
			for i := 0; i < ops; i++ {
				pos := (i * 7919) % n
				ix.Scan(pos, 50, func(int, uint64) bool { return true })
				check(ix.InsertAt(pos, next))
				next++
			}
		}) / ops

		dense := make([]uint64, n)
		for i := range dense {
			dense[i] = uint64(i + 1)
		}
		denseTime := timed(func() {
			for i := 0; i < ops; i++ {
				pos := (i * 7919) % len(dense)
				end := pos + 50
				if end > len(dense) {
					end = len(dense)
				}
				_ = dense[pos:end]
				dense = append(dense, 0)
				copy(dense[pos+1:], dense[pos:])
				dense[pos] = next
				next++
			}
		}) / ops
		fmt.Printf("%-10d %-18v %-18v\n", n, ixTime, denseTime)
	}
}

func a3() {
	header("A3", "Interface storage: window block reads, proximity-blocked vs flat")
	fmt.Printf("%-10s %-12s %-20s %-14s\n", "cells", "layout", "blockreads_per_window", "time_per_window")
	for _, rows := range []int{20000 * *scale} {
		for _, mode := range []string{"blocked", "flat"} {
			ps := pager.NewStore()
			pool := pager.NewBufferPool(ps, 0)
			var store sheet.CellStore
			if mode == "blocked" {
				store = cellstore.NewBlockedStore(pool, cellstore.WithTileCache(4))
			} else {
				store = cellstore.NewFlatStore(pool)
			}
			for c := 0; c < 10; c++ {
				for r := 0; r < rows; r++ {
					store.Set(sheet.Addr(r, c), sheet.Cell{Value: sheet.Number(float64(r))})
				}
			}
			if bs, ok := store.(*cellstore.BlockedStore); ok {
				check(bs.DropCache())
			}
			ps.ResetStats()
			const windows = 100
			t := timed(func() {
				for i := 0; i < windows; i++ {
					start := (i * 613) % (rows - 50)
					store.GetRange(sheet.RangeOf(start, 0, start+49, 9), func(sheet.Address, sheet.Cell) {})
				}
			}) / windows
			fmt.Printf("%-10d %-12s %-20.1f %-14v\n", rows*10, mode, float64(ps.Stats().Reads)/windows, t)
		}
	}
}

func a4() {
	header("A4", "Visible-first computation: time-to-visible vs full recompute")
	fmt.Printf("%-10s %-20s %-20s\n", "formulas", "visible_first", "full_recalc")
	for _, formulas := range []int{2000 * *scale, 10000 * *scale} {
		times := map[bool]time.Duration{}
		for _, prioritised := range []bool{true, false} {
			ds := mustDS(core.Options{WindowRows: 25, WindowCols: 4})
			setCell(ds, "Sheet1", "A1", "1")
			for i := 0; i < formulas; i++ {
				wait, err := ds.SetCell("Sheet1", sheet.Addr(i, 1).String(), "=A1*2")
				check(err)
				wait()
			}
			ds.Wait()
			if !prioritised {
				ds.Engine().SetVisibleProvider(nil)
			}
			const edits = 5
			var total time.Duration
			for i := 0; i < edits; i++ {
				start := time.Now()
				wait, err := ds.SetCell("Sheet1", "A1", fmt.Sprintf("%d", i+2))
				check(err)
				total += time.Since(start) // time until visible cells are consistent
				wait()
			}
			times[prioritised] = total / edits
		}
		fmt.Printf("%-10d %-20v %-20v\n", formulas, times[true], times[false])
	}
}

func a5() {
	header("A5", "Shared computation: one DBSQL range formula vs one formula per cell")
	fmt.Printf("%-10s %-16s %-16s\n", "rows", "dbsql_single", "per_cell_lookup")
	for _, n := range []int{500 * *scale, 2000 * *scale} {
		ds := mustDS(core.Options{})
		_, err := ds.Query("CREATE TABLE vals (id INT PRIMARY KEY, v NUMERIC)")
		check(err)
		for i := 0; i < n; i++ {
			_, err := ds.DB().Insert("vals", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 3))})
			check(err)
		}
		dbsqlTime := timed(func() {
			setCell(ds, "Sheet1", "A1", `=DBSQL("SELECT v FROM vals ORDER BY id")`)
		})

		s := baseline.New()
		s.RecalcOnEdit = false
		for i := 0; i < n; i++ {
			s.SetValue(sheet.Addr(i, 0), sheet.Number(float64(i)))
			s.SetValue(sheet.Addr(i, 1), sheet.Number(float64(i*3)))
		}
		perCellTime := timed(func() {
			for i := 0; i < n; i++ {
				check(s.Set(sheet.Addr(i, 3), fmt.Sprintf("=VLOOKUP(%d, A1:B%d, 2)", i, n)))
			}
			s.RecalcAll()
		})
		fmt.Printf("%-10d %-16v %-16v\n", n, dbsqlTime, perCellTime)
	}
}
