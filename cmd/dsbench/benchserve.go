package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/client"
	"github.com/dataspread/dataspread/internal/server"
)

// Serving-tier load benchmark (-serve FILE). Boots an in-process dataspreadd
// on a loopback listener, then drives it closed-loop: four tenants, two
// sessions each, every session alternating a mixed read/write statement
// stream against its own workbook (80% selective SELECTs, 20% single-row
// INSERT/UPDATE). Latency is measured client-side per operation class —
// read = streamed query round-trip to the DONE frame, write = exec
// round-trip — and reported as p50/p95/p99 per class and per tenant, along
// with throughput and the server's own admission/eviction counters. The
// multi-tenant point this reproduces is the serving-tier half of the
// paper's positioning: one spreadsheet-database process serving many
// independent workbooks with bounded resident state and per-tenant
// isolation under concurrent load.

const (
	serveTenants        = 4
	serveSessionsPerTen = 2
	serveSeedRows       = 2_000
	serveWriteEvery     = 5 // 1 write per 5 ops = 20% writes
)

type serveOpStats struct {
	Ops      int     `json:"ops"`
	Errors   int     `json:"errors"`
	P50Micro float64 `json:"p50_micros"`
	P95Micro float64 `json:"p95_micros"`
	P99Micro float64 `json:"p99_micros"`
	MaxMicro float64 `json:"max_micros"`
}

type serveTenantReport struct {
	Read  serveOpStats `json:"read"`
	Write serveOpStats `json:"write"`
}

type serveReport struct {
	PR          int                          `json:"pr"`
	Title       string                       `json:"title"`
	GeneratedBy string                       `json:"generated_by"`
	Tenants     int                          `json:"tenants"`
	Sessions    int                          `json:"sessions"`
	DurationSec float64                      `json:"duration_seconds"`
	TotalOps    int                          `json:"total_ops"`
	OpsPerSec   float64                      `json:"ops_per_sec"`
	Read        serveOpStats                 `json:"read"`
	Write       serveOpStats                 `json:"write"`
	PerTenant   map[string]serveTenantReport `json:"per_tenant"`
	ServerStats server.Stats                 `json:"server_stats"`
}

type latSample struct {
	tenant string
	write  bool
	micros float64
}

func quantileMicros(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

func summarize(samples []float64, errs int) serveOpStats {
	sort.Float64s(samples)
	st := serveOpStats{Ops: len(samples), Errors: errs}
	if len(samples) > 0 {
		st.P50Micro = quantileMicros(samples, 0.50)
		st.P95Micro = quantileMicros(samples, 0.95)
		st.P99Micro = quantileMicros(samples, 0.99)
		st.MaxMicro = samples[len(samples)-1]
	}
	return st
}

func writeServeBench(path string) {
	dataRoot, err := os.MkdirTemp("", "dsbench-serve-*")
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dataRoot); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: cleaning %s: %v\n", dataRoot, err)
		}
	}()

	tenants := make(map[string]string, serveTenants)
	names := make([]string, 0, serveTenants)
	for i := 0; i < serveTenants; i++ {
		name := fmt.Sprintf("tenant%d", i)
		tenants[name] = fmt.Sprintf("token-%d", i)
		names = append(names, name)
	}
	srv, err := server.New(server.Config{DataRoot: dataRoot, Tenants: tenants})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Seed each tenant's workbook over the wire.
	ctx := context.Background()
	for _, name := range names {
		c, err := client.Dial(addr, client.Config{Tenant: name, Token: tenants[name]})
		if err != nil {
			fatal(err)
		}
		if _, err := c.Exec(ctx, "CREATE TABLE events (id REAL, bucket REAL, note TEXT)"); err != nil {
			fatal(err)
		}
		ins, err := c.Prepare("INSERT INTO events VALUES (:id, :bucket, :note)")
		if err != nil {
			fatal(err)
		}
		if err := c.Begin(ctx); err != nil {
			fatal(err)
		}
		for i := 0; i < serveSeedRows; i++ {
			if _, err := ins.Exec(ctx,
				dataspread.Named("id", float64(i)),
				dataspread.Named("bucket", float64(i%100)),
				dataspread.Named("note", fmt.Sprintf("seed-%d", i))); err != nil {
				fatal(err)
			}
		}
		if err := c.Commit(ctx); err != nil {
			fatal(err)
		}
		if err := c.Close(); err != nil {
			fatal(err)
		}
	}

	duration := time.Duration(*scale) * 3 * time.Second
	fmt.Fprintf(os.Stderr, "dsbench: serving-tier load, %d tenants x %d sessions, %v against %s\n",
		serveTenants, serveSessionsPerTen, duration, addr)

	var mu sync.Mutex
	var samples []latSample
	readErrs := map[string]int{}
	writeErrs := map[string]int{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	timer := time.AfterFunc(duration, func() { close(stop) })
	defer timer.Stop()
	start := time.Now()
	for ti, name := range names {
		for si := 0; si < serveSessionsPerTen; si++ {
			wg.Add(1)
			go func(tenant string, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				c, err := client.Dial(addr, client.Config{Tenant: tenant, Token: tenants[tenant]})
				if err != nil {
					fatal(err)
				}
				defer func() {
					if err := c.Close(); err != nil {
						fmt.Fprintf(os.Stderr, "dsbench: close: %v\n", err)
					}
				}()
				q, err := c.Prepare("SELECT COUNT(*), SUM(id) FROM events WHERE bucket = :b")
				if err != nil {
					fatal(err)
				}
				ins, err := c.Prepare("INSERT INTO events VALUES (:id, :bucket, :note)")
				if err != nil {
					fatal(err)
				}
				nextID := float64(serveSeedRows + int(seed)*1_000_000)
				var local []latSample
				localReadErr, localWriteErr := 0, 0
				for n := 0; ; n++ {
					select {
					case <-stop:
						mu.Lock()
						samples = append(samples, local...)
						readErrs[tenant] += localReadErr
						writeErrs[tenant] += localWriteErr
						mu.Unlock()
						return
					default:
					}
					write := n%serveWriteEvery == serveWriteEvery-1
					t0 := time.Now()
					if write {
						nextID++
						_, err = ins.Exec(ctx,
							dataspread.Named("id", nextID),
							dataspread.Named("bucket", float64(rng.Intn(100))),
							dataspread.Named("note", "load"))
					} else {
						var rows *client.Rows
						rows, err = q.Query(ctx, dataspread.Named("b", float64(rng.Intn(100))))
						if err == nil {
							for rows.Next() {
							}
							err = errors.Join(rows.Err(), rows.Close())
						}
					}
					el := float64(time.Since(t0).Microseconds())
					if err != nil {
						if write {
							localWriteErr++
						} else {
							localReadErr++
						}
						continue
					}
					local = append(local, latSample{tenant: tenant, write: write, micros: el})
				}
			}(name, int64(ti*serveSessionsPerTen+si+1))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := srv.Stats()
	shctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil {
		fatal(err)
	}
	if err := <-serveDone; err != nil {
		fatal(err)
	}

	var reads, writes []float64
	perTenant := map[string]serveTenantReport{}
	perRead := map[string][]float64{}
	perWrite := map[string][]float64{}
	for _, s := range samples {
		if s.write {
			writes = append(writes, s.micros)
			perWrite[s.tenant] = append(perWrite[s.tenant], s.micros)
		} else {
			reads = append(reads, s.micros)
			perRead[s.tenant] = append(perRead[s.tenant], s.micros)
		}
	}
	totalErrs := 0
	for _, name := range names {
		perTenant[name] = serveTenantReport{
			Read:  summarize(perRead[name], readErrs[name]),
			Write: summarize(perWrite[name], writeErrs[name]),
		}
		totalErrs += readErrs[name] + writeErrs[name]
	}
	total := len(samples)
	rep := serveReport{
		PR:          10,
		Title:       "dataspreadd serving tier: multi-tenant mixed read/write closed-loop load",
		GeneratedBy: "dsbench -serve",
		Tenants:     serveTenants,
		Sessions:    serveTenants * serveSessionsPerTen,
		DurationSec: elapsed.Seconds(),
		TotalOps:    total,
		OpsPerSec:   float64(total) / elapsed.Seconds(),
		Read:        summarize(reads, sum(readErrs)),
		Write:       summarize(writes, sum(writeErrs)),
		PerTenant:   perTenant,
		ServerStats: stats,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dsbench: %d ops (%.0f/s, %d errors) -> %s\n", total, rep.OpsPerSec, totalErrs, path)
}

func sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dsbench: %v\n", err)
	os.Exit(1)
}
