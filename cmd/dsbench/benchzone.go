package main

import (
	"fmt"
	"sync"
	"testing"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
)

// PR 9 workloads: paired skipped-vs-unskipped executions of the zone-map
// pruning path over one shared 1M-row table, plus a dictionary-vs-plain text
// scan pair. The dataset is built once; SetForceNoSkip flips the pruning
// mode between timings so both sides of every pair see identical pages.

const (
	zoneBenchRows    = 1_000_000
	zoneBenchWorkers = 8
)

var (
	zoneDBOnce sync.Once
	zoneDB     *sqlexec.Database
)

// zoneBenchDB lazily builds the shared dataset: zb's ts column is clustered
// with insertion order but deliberately NOT indexed (zone maps are the only
// way to avoid reading every page), qty is scattered, cat is low-NDV text
// (dictionary-encoded pages) and pad is high-NDV text (plain pages).
func zoneBenchDB() *sqlexec.Database {
	zoneDBOnce.Do(func() {
		pool := 1 << 16
		db := sqlexec.NewDatabase(sqlexec.Config{
			Layout: sqlexec.LayoutHybrid, Workers: zoneBenchWorkers, BufferPoolPages: &pool,
		})
		sess := db.NewSession(nil)
		_, err := sess.Query(`CREATE TABLE zb (id NUMBER PRIMARY KEY, ts NUMBER, qty NUMBER, cat STRING, pad STRING)`)
		check(err)
		for i := 0; i < zoneBenchRows; i++ {
			_, err := db.Insert("zb", []sheet.Value{
				sheet.Number(float64(i)),
				sheet.Number(float64(i)),
				sheet.Number(float64(i % 1000)),
				sheet.String_(fmt.Sprintf("c%d", i%8)),
				sheet.String_(fmt.Sprintf("p%06d", i%499979)),
			})
			check(err)
		}
		zoneDB = db
	})
	return zoneDB
}

// benchZoneQuery times one query over the shared dataset with zone-map
// skipping either live or forced off (the baseline side of each pair).
func benchZoneQuery(query string, wantRows int, forceNoSkip bool) func(b *testing.B) {
	return func(b *testing.B) {
		db := zoneBenchDB()
		db.SetForceNoSkip(forceNoSkip)
		defer db.SetForceNoSkip(false)
		sess := db.NewSession(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && len(res.Rows) != wantRows {
				b.Fatalf("query %q returned %d rows, want %d", query, len(res.Rows), wantRows)
			}
		}
	}
}

// zoneScanMeta runs the query once with pruning live and reports the page
// accounting (pages read vs skipped by zone maps) plus the worker count —
// the JSON metadata that shows WHY the pair's after side is faster.
func zoneScanMeta(query string) map[string]int64 {
	db := zoneBenchDB()
	db.SetForceNoSkip(false)
	db.ResetScanStats()
	sess := db.NewSession(nil)
	_, err := sess.Query(query)
	check(err)
	read, skipped := db.ScanStats()
	return map[string]int64{
		"workers":       zoneBenchWorkers,
		"pages_read":    read,
		"pages_skipped": skipped,
	}
}
