package main

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/storage/tablestore"
)

// PR 8 workloads: paired serial-vs-parallel executions of the morsel-driven
// executor over one shared 1M-row table, plus a writer-interference latency
// probe for the snapshot-read path. The dataset is built once and reused;
// SetForceSerial/SetWorkers flip the execution mode between timings, so both
// sides of every pair see identical pages.

const (
	parBenchRows = 1_000_000
	parBenchDims = 256
)

var (
	parDBOnce sync.Once
	parDB     *sqlexec.Database
)

// parBenchDB lazily builds the shared dataset: big (1M rows, 256 groups,
// integer-valued qty so parallel SUM/AVG reassociation stays exact) and dims
// (one row per group).
func parBenchDB() *sqlexec.Database {
	parDBOnce.Do(func() {
		// The pool is sized to hold the whole working set: these pairs
		// measure executor differences, not buffer-pool eviction.
		pool := 1 << 16
		db := sqlexec.NewDatabase(sqlexec.Config{
			Layout: sqlexec.LayoutHybrid, Workers: 8, BufferPoolPages: &pool,
		})
		sess := db.NewSession(nil)
		mustQuery := func(q string) {
			_, err := sess.Query(q)
			check(err)
		}
		mustQuery(`CREATE TABLE big (id NUMBER PRIMARY KEY, grp NUMBER, qty NUMBER)`)
		mustQuery(`CREATE TABLE dims (gid NUMBER PRIMARY KEY, name STRING)`)
		for i := 0; i < parBenchRows; i++ {
			_, err := db.Insert("big", []sheet.Value{
				sheet.Number(float64(i)),
				sheet.Number(float64(i % parBenchDims)),
				sheet.Number(float64(i%1001 - 500)),
			})
			check(err)
		}
		for g := 0; g < parBenchDims; g++ {
			_, err := db.Insert("dims", []sheet.Value{
				sheet.Number(float64(g)), sheet.String_(fmt.Sprintf("dim-%d", g)),
			})
			check(err)
		}
		parDB = db
	})
	return parDB
}

// benchParQuery times one query over the shared dataset with the given
// execution mode: workers == 1 forces the serial executor, anything larger
// runs the morsel pool at that width.
func benchParQuery(query string, wantRows, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		db := parBenchDB()
		db.SetForceSerial(workers == 1)
		db.SetWorkers(workers)
		defer func() {
			db.SetForceSerial(false)
			db.SetWorkers(0)
		}()
		sess := db.NewSession(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && len(res.Rows) != wantRows {
				b.Fatalf("query %q returned %d rows, want %d", query, len(res.Rows), wantRows)
			}
		}
	}
}

// benchWriterInterference measures read latency percentiles while a writer
// churns rows on the same table. In serial mode every scan holds the engine
// read lock end to end, so reads queue behind each exclusive writer hold; in
// snapshot mode the reader pins an epoch under a brief lock and scans frozen
// pages, so the writer's lock holds stop landing in the read path. Returns
// (p50, p99) in nanoseconds over `samples` aggregation queries.
func benchWriterInterference(serial bool, samples int) (p50, p99 float64) {
	db := parBenchDB()
	db.SetForceSerial(serial)
	defer db.SetForceSerial(false)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := i % parBenchRows
			if err := db.Update("big", tablestore.RowID(n+1), []sheet.Value{
				sheet.Number(float64(n)),
				sheet.Number(float64(n % parBenchDims)),
				sheet.Number(float64(n%1001 - 500)),
			}); err != nil {
				check(err)
			}
		}
	}()

	sess := db.NewSession(nil)
	lat := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		start := time.Now()
		res, err := sess.Query(`SELECT grp, COUNT(*), SUM(qty) FROM big GROUP BY grp`)
		check(err)
		if len(res.Rows) != parBenchDims {
			check(fmt.Errorf("interference read returned %d groups, want %d", len(res.Rows), parBenchDims))
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	writer.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds())
	}
	return pct(0.50), pct(0.99)
}
