package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/sheet"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/storage/pager"
)

// Machine-readable benchmark output (-json FILE). Five groups are measured:
//
//   - zone-map pairs (PR 9): pruned-vs-unskipped scans over a shared 1M-row
//     table whose ts column is clustered but unindexed — a selective
//     predicate scan plus GROUP BY at 1%/10%/100% selectivity — and a
//     dictionary-vs-plain text scan pair; each zone entry's meta records the
//     pages read vs skipped and the worker count;
//   - parallel pairs (PR 8): the morsel-driven executor against the serial
//     one over a shared 1M-row table — full scan, pushed-predicate scan,
//     GROUP BY at 2/4/8 workers, hash join — plus writer-interference read
//     latency percentiles (serial locking vs snapshot reads);
//   - backend pairs: the PR 3 access-path workloads (PK point, PK range,
//     index-ordered top-K, secondary lookup, full scan) plus the D1 durable
//     append, each run over a file-backed workbook with a deliberately small
//     buffer pool against BOTH page backends — FileStore (pread) as the
//     baseline and MmapStore as the contender — so the mmap read path's
//     syscall savings are self-contained in one file;
//   - cold-open scaling: OpenFile time for checkpointed workbooks with a
//     fixed dirty WAL tail versus a replay-only history, demonstrating that
//     recovery is O(dirty work since the last checkpoint), not O(row count);
//   - carried headline workloads (access paths vs forced full scan incl. the
//     new IN-list probes, M2, M3, A5, F2a), kept so regressions across PRs
//     stay diffable.

type benchNums struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchEntry struct {
	Name     string           `json:"name"`
	Baseline *benchNums       `json:"baseline,omitempty"`
	After    benchNums        `json:"after"`
	Speedup  float64          `json:"speedup,omitempty"`
	Meta     map[string]int64 `json:"meta,omitempty"`
}

type benchReport struct {
	PR            int          `json:"pr"`
	Title         string       `json:"title"`
	GeneratedBy   string       `json:"generated_by"`
	MmapSupported bool         `json:"mmap_supported"`
	Benchmarks    []benchEntry `json:"benchmarks"`
}

func runNums(fn func(b *testing.B)) benchNums {
	r := testing.Benchmark(fn)
	return benchNums{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func writeBenchJSON(path string) {
	report := benchReport{
		PR:            9,
		Title:         "Zone maps, lightweight column compression, and page-level data skipping on the cold scan path",
		GeneratedBy:   "cmd/dsbench -json (Zone*: baseline = SetForceNoSkip scan, after = zone-map pruned scan, shared 1M-row table with an unindexed clustered ts column, meta records pages read vs skipped and the worker count; DictVsPlainTextScan: baseline = plain-encoded high-NDV text column, after = dictionary-encoded low-NDV column, same shape; Par*: baseline = forced-serial executor, after = morsel pool at the named worker count; WriterInterference*: baseline = serial scans under the engine lock, after = snapshot reads, both against a churning writer; MmapVsFile*: baseline = FileStore pread, after = MmapStore)",
		MmapSupported: pager.MmapSupported,
	}
	addMeta := func(name string, baseline *benchNums, after benchNums, meta map[string]int64) {
		e := benchEntry{Name: name, Baseline: baseline, After: after, Meta: meta}
		if baseline != nil && after.NsPerOp > 0 {
			e.Speedup = round2(baseline.NsPerOp / after.NsPerOp)
		}
		report.Benchmarks = append(report.Benchmarks, e)
		if baseline != nil {
			fmt.Printf("%-34s %12.0f ns/op (baseline %12.0f ns/op, %6.2fx)\n",
				name, after.NsPerOp, baseline.NsPerOp, e.Speedup)
		} else {
			fmt.Printf("%-34s %12.0f ns/op %10d B/op %8d allocs/op\n",
				name, after.NsPerOp, after.BytesPerOp, after.AllocsPerOp)
		}
	}
	add := func(name string, baseline *benchNums, after benchNums) {
		addMeta(name, baseline, after, nil)
	}

	// Zone-map pairs (PR 9): identical queries with pruning live (after) and
	// forced off (baseline). ts is clustered and unindexed, so every page
	// saved is the zone maps' doing; selectivity names the kept fraction.
	zonePairs := []struct {
		name     string
		query    string
		wantRows int
	}{
		{"ZoneSelectiveScan1M1pct", "SELECT id, qty FROM zb WHERE ts >= 990000", 10000},
		{"ZoneGroupBy1M1pct", "SELECT cat, COUNT(id), SUM(qty) FROM zb WHERE ts >= 990000 GROUP BY cat", 8},
		{"ZoneGroupBy1M10pct", "SELECT cat, COUNT(id), SUM(qty) FROM zb WHERE ts >= 900000 GROUP BY cat", 8},
		{"ZoneGroupBy1M100pct", "SELECT cat, COUNT(id), SUM(qty) FROM zb WHERE ts >= 0 GROUP BY cat", 8},
	}
	for _, w := range zonePairs {
		unskipped := runNums(benchZoneQuery(w.query, w.wantRows, true))
		skipped := runNums(benchZoneQuery(w.query, w.wantRows, false))
		addMeta(w.name, &unskipped, skipped, zoneScanMeta(w.query))
	}
	// Dictionary vs plain text scan: the same filtered aggregation over the
	// low-NDV (dictionary-encoded) and high-NDV (plain) text columns.
	plainText := runNums(benchZoneQuery("SELECT COUNT(id) FROM zb WHERE pad = 'p000042'", 1, true))
	dictText := runNums(benchZoneQuery("SELECT COUNT(id) FROM zb WHERE cat = 'c3'", 1, true))
	addMeta("DictVsPlainTextScan1M", &plainText, dictText, map[string]int64{"workers": zoneBenchWorkers})

	// Parallel-vs-serial pairs (PR 8): identical queries over the shared
	// 1M-row table, baseline forced serial, after run by the morsel pool at
	// the worker count in the name. Integer data keeps the parallel
	// aggregation's reassociated SUM/AVG exactly equal to the serial fold.
	parPairs := []struct {
		name     string
		query    string
		wantRows int
		workers  int
	}{
		{"ParFullScan1M8w", "SELECT id, grp, qty FROM big", parBenchRows, 8},
		{"ParPredScan1M8w", "SELECT id FROM big WHERE qty > 450", 0, 8},
		{"ParGroupBy1M2w", "SELECT grp, COUNT(*), SUM(qty), AVG(qty), MIN(id), MAX(id) FROM big GROUP BY grp", parBenchDims, 2},
		{"ParGroupBy1M4w", "SELECT grp, COUNT(*), SUM(qty), AVG(qty), MIN(id), MAX(id) FROM big GROUP BY grp", parBenchDims, 4},
		{"ParGroupBy1M8w", "SELECT grp, COUNT(*), SUM(qty), AVG(qty), MIN(id), MAX(id) FROM big GROUP BY grp", parBenchDims, 8},
		{"ParHashJoin1M8w", "SELECT d.name, COUNT(*) FROM big b JOIN dims d ON b.grp = d.gid AND b.qty > 0 GROUP BY d.name", parBenchDims, 8},
	}
	for _, w := range parPairs {
		serial := runNums(benchParQuery(w.query, w.wantRows, 1))
		par := runNums(benchParQuery(w.query, w.wantRows, w.workers))
		add(w.name, &serial, par)
	}

	// Writer-interference percentiles: read latency for a GROUP BY while a
	// writer churns the same table. Encoded as one entry per percentile so
	// the report stays in ns_per_op terms.
	serialP50, serialP99 := benchWriterInterference(true, 20)
	snapP50, snapP99 := benchWriterInterference(false, 20)
	add("WriterInterferenceReadP50", &benchNums{NsPerOp: serialP50}, benchNums{NsPerOp: snapP50})
	add("WriterInterferenceReadP99", &benchNums{NsPerOp: serialP99}, benchNums{NsPerOp: snapP99})

	// Prepared-vs-text point queries (PR 5): the same 50k-row pk point
	// lookup driven as (a) a fresh literal SQL text per call — every call a
	// plan-cache miss that re-lexes, re-parses and re-analyzes — versus (b)
	// one prepared `WHERE id = ?` statement whose plan-cache entry is hit on
	// every execution and whose pk point access path binds its key from the
	// per-execution argument. The streaming variant additionally returns
	// rows through the public iterator instead of materialising.
	textPoint := runNums(benchPointQuery(modeText))
	preparedPoint := runNums(benchPointQuery(modePrepared))
	add("PreparedVsTextPointQuery", &textPoint, preparedPoint)
	preparedStream := runNums(benchPointQuery(modePreparedStream))
	add("PreparedVsTextPointQueryStream", &textPoint, preparedStream)

	// FileStore-vs-MmapStore pairs over the PR 3 scan/point workloads.
	backendPairs := []struct {
		name     string
		query    string
		wantRows int
	}{
		{"MmapVsFilePKPoint", "SELECT v FROM big WHERE id = 10000", 1},
		{"MmapVsFilePKRange", "SELECT id, v FROM big WHERE id BETWEEN 12000 AND 12100", 101},
		{"MmapVsFileTopK", "SELECT id FROM big ORDER BY id DESC LIMIT 10", 10},
		{"MmapVsFileSecondaryLookup", "SELECT id FROM big WHERE g = 137 AND v > 0", 40},
		{"MmapVsFileFullScan", "SELECT COUNT(v) FROM big WHERE v >= 0", 1},
	}
	for _, w := range backendPairs {
		file := runNums(benchBackendQuery(w.query, w.wantRows, false))
		mm := runNums(benchBackendQuery(w.query, w.wantRows, true))
		add(w.name, &file, mm)
	}
	// D1 durable append, group commit 64, both backends.
	fileAppend := runNums(benchD1Append(false))
	mmapAppend := runNums(benchD1Append(true))
	add("MmapVsFileD1Append", &fileAppend, mmapAppend)

	// Cold-open scaling: time tracks the dirty tail, not the row count; the
	// replay-only entry is the pre-page-catalog behaviour.
	add("ColdOpenCheckpointed10kDirty0", nil, runNums(benchColdOpen(10000, 0)))
	add("ColdOpenCheckpointed10kDirty500", nil, runNums(benchColdOpen(10000, 500)))
	add("ColdOpenCheckpointed20kDirty500", nil, runNums(benchColdOpen(20000, 500)))
	add("ColdOpenReplayOnly10k", nil, runNums(benchColdOpen(0, 10000)))

	// Carried access-path pairs (index path vs forced full scan, in memory).
	carriedPairs := []struct {
		name     string
		query    string
		wantRows int
	}{
		{"PKPointLookup", "SELECT v FROM big WHERE id = 25000", 1},
		{"PKRangeScan", "SELECT id, v FROM big WHERE id BETWEEN 30000 AND 30100", 101},
		{"IndexOrderedTopK", "SELECT id FROM big ORDER BY id DESC LIMIT 10", 10},
		{"SecondaryIndexLookup", "SELECT id FROM big WHERE g = 137 AND v > 0", 100},
		{"PKInListProbes", "SELECT id, v FROM big WHERE id IN (11, 222, 3333, 44444)", 4},
	}
	for _, w := range carriedPairs {
		after := runNums(benchAccess(w.query, w.wantRows, false))
		baseline := runNums(benchAccess(w.query, w.wantRows, true))
		add(w.name, &baseline, after)
	}
	carried := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"M2FilterSQL", benchM2},
		{"M3JoinSQL", benchM3},
		{"A5SharedComputationDBSQL", benchA5},
		{"F2aDBSQLQuery", benchF2a},
	}
	for _, w := range carried {
		add(w.name, nil, runNums(w.fn))
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	check(err)
	blob = append(blob, '\n')
	check(os.WriteFile(path, blob, 0o644))
	fmt.Printf("wrote %s\n", path)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

// pointQueryMode selects how benchPointQuery drives the lookup.
type pointQueryMode int

const (
	modeText pointQueryMode = iota
	modePrepared
	modePreparedStream
)

// benchPointQuery times a pk point lookup over a 50k-row in-memory table,
// with a different key every iteration (the workload the plan cache's text
// keying punishes: each literal text is new, so the text mode re-plans every
// call while the prepared mode binds fresh arguments into one cached plan).
func benchPointQuery(mode pointQueryMode) func(b *testing.B) {
	return func(b *testing.B) {
		ds := core.New(core.Options{})
		defer ds.Close()
		if _, err := ds.Query("CREATE TABLE big (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
			b.Fatal(err)
		}
		const n = 50000
		for i := 0; i < n; i++ {
			if _, err := ds.DB().Insert("big", []sheet.Value{
				sheet.Number(float64(i)), sheet.Number(float64(i) * 2),
			}); err != nil {
				b.Fatal(err)
			}
		}
		ctx := context.Background()
		conn := ds.NewConn()
		var p *sqlexec.Prepared
		if mode != modeText {
			var err error
			if p, err = conn.Prepare("SELECT v FROM big WHERE id = ?"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := (i * 7919) % n
			switch mode {
			case modeText:
				res, err := conn.QueryContext(ctx, fmt.Sprintf("SELECT v FROM big WHERE id = %d", id))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("got %d rows", len(res.Rows))
				}
			case modePrepared:
				res, err := conn.ExecutePrepared(ctx, p, sheet.Number(float64(id)))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatalf("got %d rows", len(res.Rows))
				}
			case modePreparedStream:
				rows, err := conn.StreamPrepared(ctx, p, sheet.Number(float64(id)))
				if err != nil {
					b.Fatal(err)
				}
				got := 0
				for rows.Next() {
					got++
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
				if got != 1 {
					b.Fatalf("streamed %d rows", got)
				}
			}
		}
	}
}

// benchBackendQuery builds a durable 20k-row workbook over the chosen page
// backend with a small buffer pool (64 pages), checkpoints it so the table
// pages are on disk, and times one query — scans page in through the
// backend's read path, which is exactly what the FileStore/MmapStore pair
// compares.
func benchBackendQuery(query string, wantRows int, mmap bool) func(b *testing.B) {
	return func(b *testing.B) {
		pool := 64
		path := filepath.Join(b.TempDir(), "book.dsp")
		ds, err := core.OpenFile(path, core.Options{
			Mmap:               mmap,
			BufferPoolPages:    &pool,
			CheckpointWALBytes: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		if _, err := ds.QueryScript(`
			CREATE TABLE big (id INT PRIMARY KEY, g INT, v NUMERIC);
			CREATE INDEX big_g ON big (g);`); err != nil {
			b.Fatal(err)
		}
		const n = 20000
		for i := 0; i < n; i++ {
			if _, err := ds.DB().Insert("big", []sheet.Value{
				sheet.Number(float64(i)), sheet.Number(float64(i % 500)), sheet.Number(float64(i) * 2),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := ds.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ds.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && len(res.Rows) != wantRows {
				b.Fatalf("query %q returned %d rows, want %d", query, len(res.Rows), wantRows)
			}
		}
	}
}

// benchD1Append times the durable append path (group commit 64) over the
// chosen backend.
func benchD1Append(mmap bool) func(b *testing.B) {
	return func(b *testing.B) {
		ds, err := core.OpenFile(filepath.Join(b.TempDir(), "book.dsp"), core.Options{Mmap: mmap})
		if err != nil {
			b.Fatal(err)
		}
		defer ds.Close()
		ds.WAL().SetGroupCommit(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wait, err := ds.SetCell("Sheet1", fmt.Sprintf("A%d", i+1), fmt.Sprintf("%d", i))
			if err != nil {
				b.Fatal(err)
			}
			wait()
		}
	}
}

// benchColdOpen builds a workbook with `rows` checkpointed rows plus a
// `tail`-row WAL tail (rows == 0 means a replay-only history of `tail`
// rows), then times OpenFile; Close is excluded from the timing.
func benchColdOpen(rows, tail int) func(b *testing.B) {
	return func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "book.dsp")
		ds, err := core.OpenFile(path, core.Options{CheckpointWALBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ds.Query("CREATE TABLE seq (n INT PRIMARY KEY, v NUMERIC)"); err != nil {
			b.Fatal(err)
		}
		ds.WAL().SetGroupCommit(1 << 20) // build fast; this bench times the open
		for i := 1; i <= rows; i++ {
			if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i*2)); err != nil {
				b.Fatal(err)
			}
		}
		if rows > 0 {
			if err := ds.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		for i := rows + 1; i <= rows+tail; i++ {
			if _, err := ds.Query(fmt.Sprintf("INSERT INTO seq VALUES (%d, %d)", i, i*2)); err != nil {
				b.Fatal(err)
			}
		}
		if err := ds.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			re, err := core.OpenFile(path, core.Options{CheckpointWALBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := re.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// benchAccess builds the access-path workload table — 50k rows, numeric PK,
// secondary index on g — and times one query, optionally forcing the
// full-scan path so the index speedup is measurable on identical data.
func benchAccess(query string, wantRows int, forceFullScan bool) func(b *testing.B) {
	return func(b *testing.B) {
		ds := core.New(core.Options{})
		if _, err := ds.QueryScript(`
			CREATE TABLE big (id INT PRIMARY KEY, g INT, v NUMERIC);
			CREATE INDEX big_g ON big (g);`); err != nil {
			b.Fatal(err)
		}
		const n = 50000
		for i := 0; i < n; i++ {
			if _, err := ds.DB().Insert("big", []sheet.Value{
				sheet.Number(float64(i)), sheet.Number(float64(i % 500)), sheet.Number(float64(i) * 2),
			}); err != nil {
				b.Fatal(err)
			}
		}
		ds.DB().SetForceFullScan(forceFullScan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ds.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && len(res.Rows) != wantRows {
				b.Fatalf("query %q returned %d rows, want %d", query, len(res.Rows), wantRows)
			}
		}
	}
}

func benchM2(b *testing.B) {
	ds := core.New(core.Options{})
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(5000, 5, 1))
	rng := fmt.Sprintf("A1:G%d", 5001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(fmt.Sprintf("SELECT student FROM RANGETABLE(%s) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90", rng))
		if err != nil || len(res.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func benchM3(b *testing.B) {
	ds := core.New(core.Options{})
	n := 5000
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(n, 5, 1))
	_, _ = ds.AddSheet("Demo")
	dsh, _ := ds.Book().Sheet("Demo")
	dsh.SetValues(sheet.Addr(0, 0), datagen.Demographics(n, 2))
	q := fmt.Sprintf("SELECT grp, AVG(grade) FROM RANGETABLE(A1:G%d) NATURAL JOIN RANGETABLE(Demo!A1:C%d) GROUP BY grp", n+1, n+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(q)
		if err != nil || len(res.Rows) != 3 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

func benchA5(b *testing.B) {
	ds := core.New(core.Options{})
	if _, err := ds.Query("CREATE TABLE vals (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ds.DB().Insert("vals", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "A1", `=DBSQL("SELECT v FROM vals ORDER BY id")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

func benchF2a(b *testing.B) {
	ds := core.New(core.Options{})
	data := datagen.MoviesDataset(5000, 5, 1)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		b.Fatal(err)
	}
	for _, row := range data.Movies {
		if _, err := ds.DB().Insert("movies", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Actors {
		if _, err := ds.DB().Insert("actors", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Movies2Actors {
		if _, err := ds.DB().Insert("movies2actors", row); err != nil {
			b.Fatal(err)
		}
	}
	setCell(ds, "Sheet1", "B1", "3")
	setCell(ds, "Sheet1", "B2", "1950")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "B3",
			`=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}
