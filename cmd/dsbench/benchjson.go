package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/sheet"
)

// Machine-readable benchmark output (-json FILE). Two groups are measured:
// the access-path workloads of PR 3 (PK point lookup, PK range scan,
// index-ordered top-K, secondary-index lookup), each paired with a forced
// full-scan baseline on identical data so the speedup of the
// planner-chosen index path is self-contained in one file; and the carried
// headline workloads of the streaming-executor work (M2, M3, A5, F2a),
// kept so regressions across PRs stay diffable.

type benchNums struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchEntry struct {
	Name     string     `json:"name"`
	Baseline *benchNums `json:"baseline,omitempty"`
	After    benchNums  `json:"after"`
	Speedup  float64    `json:"speedup,omitempty"`
}

type benchReport struct {
	PR          int          `json:"pr"`
	Title       string       `json:"title"`
	GeneratedBy string       `json:"generated_by"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

func runNums(fn func(b *testing.B)) benchNums {
	r := testing.Benchmark(fn)
	return benchNums{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func writeBenchJSON(path string) {
	report := benchReport{
		PR:          3,
		Title:       "Access-path layer: planner-chosen B-tree index scans, secondary indexes, and order-aware scans",
		GeneratedBy: "cmd/dsbench -json (baseline = same query with SetForceFullScan(true))",
	}
	paired := []struct {
		name     string
		query    string
		wantRows int
	}{
		{"PKPointLookup", "SELECT v FROM big WHERE id = 25000", 1},
		{"PKRangeScan", "SELECT id, v FROM big WHERE id BETWEEN 30000 AND 30100", 101},
		{"IndexOrderedTopK", "SELECT id FROM big ORDER BY id DESC LIMIT 10", 10},
		{"SecondaryIndexLookup", "SELECT id FROM big WHERE g = 137 AND v > 0", 100},
	}
	for _, w := range paired {
		after := runNums(benchAccess(w.query, w.wantRows, false))
		baseline := runNums(benchAccess(w.query, w.wantRows, true))
		e := benchEntry{Name: w.name, Baseline: &baseline, After: after}
		if after.NsPerOp > 0 {
			e.Speedup = round2(baseline.NsPerOp / after.NsPerOp)
		}
		report.Benchmarks = append(report.Benchmarks, e)
		fmt.Printf("%-26s %12.0f ns/op (full scan %12.0f ns/op, %6.1fx)\n",
			w.name, after.NsPerOp, baseline.NsPerOp, e.Speedup)
	}
	carried := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"M2FilterSQL", benchM2},
		{"M3JoinSQL", benchM3},
		{"A5SharedComputationDBSQL", benchA5},
		{"F2aDBSQLQuery", benchF2a},
	}
	for _, w := range carried {
		after := runNums(w.fn)
		report.Benchmarks = append(report.Benchmarks, benchEntry{Name: w.name, After: after})
		fmt.Printf("%-26s %12.0f ns/op %10d B/op %8d allocs/op\n",
			w.name, after.NsPerOp, after.BytesPerOp, after.AllocsPerOp)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	check(err)
	blob = append(blob, '\n')
	check(os.WriteFile(path, blob, 0o644))
	fmt.Printf("wrote %s\n", path)
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }

// benchAccess builds the access-path workload table — 50k rows, numeric PK,
// secondary index on g — and times one query, optionally forcing the
// full-scan path so the index speedup is measurable on identical data.
func benchAccess(query string, wantRows int, forceFullScan bool) func(b *testing.B) {
	return func(b *testing.B) {
		ds := core.New(core.Options{})
		if _, err := ds.QueryScript(`
			CREATE TABLE big (id INT PRIMARY KEY, g INT, v NUMERIC);
			CREATE INDEX big_g ON big (g);`); err != nil {
			b.Fatal(err)
		}
		const n = 50000
		for i := 0; i < n; i++ {
			if _, err := ds.DB().Insert("big", []sheet.Value{
				sheet.Number(float64(i)), sheet.Number(float64(i % 500)), sheet.Number(float64(i) * 2),
			}); err != nil {
				b.Fatal(err)
			}
		}
		ds.DB().SetForceFullScan(forceFullScan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ds.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if wantRows > 0 && len(res.Rows) != wantRows {
				b.Fatalf("query %q returned %d rows, want %d", query, len(res.Rows), wantRows)
			}
		}
	}
}

func benchM2(b *testing.B) {
	ds := core.New(core.Options{})
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(5000, 5, 1))
	rng := fmt.Sprintf("A1:G%d", 5001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(fmt.Sprintf("SELECT student FROM RANGETABLE(%s) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90", rng))
		if err != nil || len(res.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func benchM3(b *testing.B) {
	ds := core.New(core.Options{})
	n := 5000
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(n, 5, 1))
	_, _ = ds.AddSheet("Demo")
	dsh, _ := ds.Book().Sheet("Demo")
	dsh.SetValues(sheet.Addr(0, 0), datagen.Demographics(n, 2))
	q := fmt.Sprintf("SELECT grp, AVG(grade) FROM RANGETABLE(A1:G%d) NATURAL JOIN RANGETABLE(Demo!A1:C%d) GROUP BY grp", n+1, n+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(q)
		if err != nil || len(res.Rows) != 3 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

func benchA5(b *testing.B) {
	ds := core.New(core.Options{})
	if _, err := ds.Query("CREATE TABLE vals (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ds.DB().Insert("vals", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "A1", `=DBSQL("SELECT v FROM vals ORDER BY id")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

func benchF2a(b *testing.B) {
	ds := core.New(core.Options{})
	data := datagen.MoviesDataset(5000, 5, 1)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		b.Fatal(err)
	}
	for _, row := range data.Movies {
		if _, err := ds.DB().Insert("movies", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Actors {
		if _, err := ds.DB().Insert("actors", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Movies2Actors {
		if _, err := ds.DB().Insert("movies2actors", row); err != nil {
			b.Fatal(err)
		}
	}
	setCell(ds, "Sheet1", "B1", "3")
	setCell(ds, "Sheet1", "B2", "1950")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "B3",
			`=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}
