package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/sheet"
)

// Machine-readable benchmark output (-json FILE). The four headline
// workloads of the streaming-executor work — M2, M3, A5 and F2a, mirroring
// the identically named testing.B benchmarks in bench_test.go — are run
// through testing.Benchmark and written as JSON so CI can archive
// BENCH_pr2.json and regressions are diffable.

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type benchReport struct {
	GeneratedBy string        `json:"generated_by"`
	Results     []benchResult `json:"results"`
}

func writeBenchJSON(path string) {
	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"M2FilterSQL", benchM2},
		{"M3JoinSQL", benchM3},
		{"A5SharedComputationDBSQL", benchA5},
		{"F2aDBSQLQuery", benchF2a},
	}
	report := benchReport{GeneratedBy: "cmd/dsbench"}
	for _, w := range workloads {
		r := testing.Benchmark(w.fn)
		report.Results = append(report.Results, benchResult{
			Name:        w.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Printf("%-26s %12.0f ns/op %10d B/op %8d allocs/op\n",
			w.name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	check(err)
	blob = append(blob, '\n')
	check(os.WriteFile(path, blob, 0o644))
	fmt.Printf("wrote %s\n", path)
}

func benchM2(b *testing.B) {
	ds := core.New(core.Options{})
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(5000, 5, 1))
	rng := fmt.Sprintf("A1:G%d", 5001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(fmt.Sprintf("SELECT student FROM RANGETABLE(%s) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90", rng))
		if err != nil || len(res.Rows) == 0 {
			b.Fatal(err)
		}
	}
}

func benchM3(b *testing.B) {
	ds := core.New(core.Options{})
	n := 5000
	sh, _ := ds.Book().Sheet("Sheet1")
	sh.SetValues(sheet.Addr(0, 0), datagen.Gradebook(n, 5, 1))
	_, _ = ds.AddSheet("Demo")
	dsh, _ := ds.Book().Sheet("Demo")
	dsh.SetValues(sheet.Addr(0, 0), datagen.Demographics(n, 2))
	q := fmt.Sprintf("SELECT grp, AVG(grade) FROM RANGETABLE(A1:G%d) NATURAL JOIN RANGETABLE(Demo!A1:C%d) GROUP BY grp", n+1, n+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Query(q)
		if err != nil || len(res.Rows) != 3 {
			b.Fatalf("%v %v", res, err)
		}
	}
}

func benchA5(b *testing.B) {
	ds := core.New(core.Options{})
	if _, err := ds.Query("CREATE TABLE vals (id INT PRIMARY KEY, v NUMERIC)"); err != nil {
		b.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := ds.DB().Insert("vals", []sheet.Value{sheet.Number(float64(i)), sheet.Number(float64(i * 3))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "A1", `=DBSQL("SELECT v FROM vals ORDER BY id")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}

func benchF2a(b *testing.B) {
	ds := core.New(core.Options{})
	data := datagen.MoviesDataset(5000, 5, 1)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		b.Fatal(err)
	}
	for _, row := range data.Movies {
		if _, err := ds.DB().Insert("movies", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Actors {
		if _, err := ds.DB().Insert("actors", row); err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range data.Movies2Actors {
		if _, err := ds.DB().Insert("movies2actors", row); err != nil {
			b.Fatal(err)
		}
	}
	setCell(ds, "Sheet1", "B1", "3")
	setCell(ds, "Sheet1", "B2", "1950")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wait, err := ds.SetCell("Sheet1", "B3",
			`=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year")`)
		if err != nil {
			b.Fatal(err)
		}
		wait()
	}
}
