// Command dataspread is an interactive shell over a DataSpread workbook: a
// spreadsheet you type cell edits and formulas into, backed by the embedded
// relational engine, with DBSQL/DBTABLE, SQL, import/export and window
// panning available from the prompt.
//
// Commands:
//
//	set <addr> <input>      enter a literal or =formula (incl. DBSQL/DBTABLE)
//	get <addr>              print one cell
//	show [range]            print the visible window (or a range)
//	sql <statement>         run SQL (RANGEVALUE/RANGETABLE allowed)
//	export <range> <table>  create a table from a range (Figure 2b)
//	import <addr> <table>   bind a table at a cell (DBTABLE)
//	scroll <addr>           move the window (fetch-on-demand panning)
//	sheet <name>            switch/create a sheet
//	tables                  list tables
//	checkpoint              compact the workbook file and truncate the WAL
//	help, quit
//
// With -file <path> the workbook is durable: every command is appended to
// <path>.wal before it returns and the state is recovered on the next start.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/sheet"
)

func main() {
	file := flag.String("file", "", "durable workbook file (WAL kept at <file>.wal)")
	mmap := flag.Bool("mmap", false, "serve workbook reads from a memory mapping (with -file)")
	flag.Parse()
	var ds *core.DataSpread
	if *file != "" {
		var err error
		ds, err = core.OpenFile(*file, core.Options{Mmap: *mmap})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, err := range ds.RecoveryErrors() {
			fmt.Fprintln(os.Stderr, "recovery:", err)
		}
		defer ds.Close()
	} else {
		ds = core.New(core.Options{})
	}
	current := "Sheet1"
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Println("DataSpread shell — type 'help' for commands")
	prompt := func() { fmt.Printf("%s> ", current) }
	prompt()
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			prompt()
			continue
		}
		cmd, rest := splitCommand(line)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("set <addr> <input> | get <addr> | show [range] | sql <stmt> | export <range> <table> | import <addr> <table> | scroll <addr> | sheet <name> | tables | checkpoint | quit")
		case "checkpoint":
			if err := ds.Checkpoint(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "set":
			addr, input := splitCommand(rest)
			wait, err := ds.SetCell(current, addr, input)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				wait()
				fmt.Println("ok")
			}
		case "get":
			v, err := ds.Get(current, rest)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(v.String())
			}
		case "show":
			var vals [][]sheet.Value
			var err error
			if rest == "" {
				vals, err = ds.VisibleValues(current)
			} else {
				vals, err = ds.GetRange(current, rest)
			}
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printGrid(vals)
		case "sql":
			res, err := ds.Query(rest)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if len(res.Columns) > 0 {
				fmt.Println(strings.Join(res.Columns, "\t"))
				for _, row := range res.Rows {
					parts := make([]string, len(row))
					for i, v := range row {
						parts[i] = v.String()
					}
					fmt.Println(strings.Join(parts, "\t"))
				}
			} else {
				fmt.Printf("ok (%d rows affected)\n", res.Affected)
			}
		case "export":
			rng, table := splitCommand(rest)
			if _, err := ds.CreateTableFromRange(current, rng, table, core.ExportOptions{}); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("created table %s from %s\n", table, rng)
			}
		case "import":
			addr, table := splitCommand(rest)
			if _, err := ds.ImportTable(current, addr, table); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("bound table %s at %s\n", table, addr)
			}
		case "scroll":
			if err := ds.ScrollTo(current, rest); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "sheet":
			if rest == "" {
				fmt.Println(strings.Join(ds.Book().SheetNames(), ", "))
				break
			}
			if _, err := ds.AddSheet(rest); err != nil {
				fmt.Println("error:", err)
				break
			}
			current = rest
		case "tables":
			for _, t := range ds.DB().Tables() {
				cols := make([]string, len(t.Columns))
				for i, c := range t.Columns {
					cols[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
				}
				fmt.Printf("%s(%s)\n", t.Name, strings.Join(cols, ", "))
			}
		default:
			fmt.Println("unknown command; type 'help'")
		}
		prompt()
	}
}

func splitCommand(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func printGrid(vals [][]sheet.Value) {
	for _, row := range vals {
		empty := true
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
			if !v.IsEmpty() {
				empty = false
			}
		}
		if empty {
			continue
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
