// Command dataspread is an interactive shell over a DataSpread workbook: a
// spreadsheet you type cell edits and formulas into, backed by the embedded
// relational engine, with DBSQL/DBTABLE, SQL, import/export and window
// panning available from the prompt. It runs entirely on the public
// dataspread package — the same surface any embedding program uses.
//
// Commands:
//
//	set <addr> <input>      enter a literal or =formula (incl. DBSQL/DBTABLE)
//	get <addr>              print one cell
//	show [range]            print the visible window (or a range)
//	sql <statement>         run SQL ('?' placeholders need the API; RANGEVALUE/RANGETABLE allowed)
//	export <range> <table>  create a table from a range (Figure 2b)
//	import <addr> <table>   bind a table at a cell (DBTABLE)
//	scroll <addr>           move the window (fetch-on-demand panning)
//	sheet <name>            switch/create a sheet
//	tables                  list tables
//	checkpoint              compact the workbook file and truncate the WAL
//	help, quit
//
// With -file <path> the workbook is durable: every command is appended to
// <path>.wal before it returns and the state is recovered on the next start.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspread/dataspread"
)

func main() {
	file := flag.String("file", "", "durable workbook file (WAL kept at <file>.wal)")
	mmap := flag.Bool("mmap", false, "serve workbook reads from a memory mapping (with -file)")
	flag.Parse()
	var db *dataspread.DB
	if *file != "" {
		var err error
		db, err = dataspread.OpenFile(*file, dataspread.Options{Mmap: *mmap})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, err := range db.RecoveryErrors() {
			fmt.Fprintln(os.Stderr, "recovery:", err)
		}
		defer db.Close()
	} else {
		db = dataspread.New(dataspread.Options{})
	}
	ctx := context.Background()
	current := "Sheet1"
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	fmt.Println("DataSpread shell — type 'help' for commands")
	prompt := func() { fmt.Printf("%s> ", current) }
	prompt()
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			prompt()
			continue
		}
		cmd, rest := splitCommand(line)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("set <addr> <input> | get <addr> | show [range] | sql <stmt> | export <range> <table> | import <addr> <table> | scroll <addr> | sheet <name> | tables | checkpoint | quit")
		case "checkpoint":
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "set":
			addr, input := splitCommand(rest)
			wait, err := db.SetCell(current, addr, input)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				wait()
				fmt.Println("ok")
			}
		case "get":
			v, err := db.Get(current, rest)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println(v.String())
			}
		case "show":
			var vals [][]dataspread.Value
			var err error
			if rest == "" {
				vals, err = db.VisibleValues(current)
			} else {
				vals, err = db.GetRange(current, rest)
			}
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printGrid(vals)
		case "sql":
			res, err := db.Exec(ctx, rest)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if len(res.Columns) > 0 {
				fmt.Println(strings.Join(res.Columns, "\t"))
				for _, row := range res.Rows {
					parts := make([]string, len(row))
					for i, v := range row {
						parts[i] = v.String()
					}
					fmt.Println(strings.Join(parts, "\t"))
				}
			} else {
				fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
			}
		case "export":
			rng, table := splitCommand(rest)
			if err := db.ExportRange(current, rng, table, dataspread.ExportOptions{}); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("created table %s from %s\n", table, rng)
			}
		case "import":
			addr, table := splitCommand(rest)
			if err := db.ImportTable(current, addr, table); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("bound table %s at %s\n", table, addr)
			}
		case "scroll":
			if err := db.ScrollTo(current, rest); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("ok")
			}
		case "sheet":
			if rest == "" {
				fmt.Println(strings.Join(db.SheetNames(), ", "))
				break
			}
			if err := db.AddSheet(rest); err != nil {
				fmt.Println("error:", err)
				break
			}
			current = rest
		case "tables":
			for _, t := range db.Tables() {
				cols := make([]string, len(t.Columns))
				for i, c := range t.Columns {
					cols[i] = fmt.Sprintf("%s %s", c.Name, c.Type)
				}
				fmt.Printf("%s(%s)\n", t.Name, strings.Join(cols, ", "))
			}
		default:
			fmt.Println("unknown command; type 'help'")
		}
		prompt()
	}
}

func splitCommand(s string) (string, string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func printGrid(vals [][]dataspread.Value) {
	for _, row := range vals {
		empty := true
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
			if !v.IsEmpty() {
				empty = false
			}
		}
		if empty {
			continue
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
}
