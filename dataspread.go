package dataspread

import (
	"context"
	"fmt"

	"github.com/dataspread/dataspread/internal/catalog"
	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/sqlexec"
)

// Layout selects the physical layout for newly created tables.
type Layout string

// Available layouts. The default (hybrid) stores tuples row-major inside
// column groups — the paper's hybrid storage manager.
const (
	LayoutHybrid Layout = "hybrid"
	LayoutRow    Layout = "row"
	LayoutColumn Layout = "column"
)

// Options configure a DB. The zero value is a usable default.
type Options struct {
	// Layout is the storage layout for new tables (default LayoutHybrid).
	Layout Layout
	// GroupSize is the attribute-group width for hybrid tables (0 =
	// default).
	GroupSize int
	// WindowRows/WindowCols size the visible spreadsheet pane used by
	// windowed table bindings (0 = defaults).
	WindowRows int
	WindowCols int
	// Mmap serves file-backed reads from a shared memory mapping where the
	// platform supports it (OpenFile only).
	Mmap bool
	// CheckpointWALBytes is the WAL size that triggers a background
	// checkpoint (OpenFile only; 0 = default, negative disables).
	CheckpointWALBytes int64
	// Workers bounds the worker pool for morsel-driven parallel query
	// execution (0 = GOMAXPROCS, 1 = serial). Large scans, aggregations
	// and joins run against an epoch-pinned snapshot, so parallel readers
	// hold no engine lock and never block writers.
	Workers int
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Layout:             sqlexec.Layout(o.Layout),
		GroupSize:          o.GroupSize,
		WindowRows:         o.WindowRows,
		WindowCols:         o.WindowCols,
		Mmap:               o.Mmap,
		CheckpointWALBytes: o.CheckpointWALBytes,
		Workers:            o.Workers,
	}
}

// DB is an embedded DataSpread instance: a workbook of spreadsheets unified
// with a relational database. All methods are safe for concurrent use except
// where noted; SQL runs through connections (Conn), and the DB itself offers
// a default connection for one-off statements.
type DB struct {
	ds   *core.DataSpread
	conn *Conn
}

// New opens an in-memory instance. It cannot fail; data is lost on Close.
func New(opts Options) *DB {
	return wrap(core.New(opts.coreOptions()))
}

// OpenFile opens (creating if necessary) a durable workbook file. State is
// recovered from the file's checkpoint and write-ahead log; a workbook open
// in another process fails with ErrConflict.
func OpenFile(path string, opts Options) (*DB, error) {
	ds, err := core.OpenFile(path, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return wrap(ds), nil
}

func wrap(ds *core.DataSpread) *DB {
	db := &DB{ds: ds}
	db.conn = &Conn{db: db, c: ds.NewConn()}
	return db
}

// Close flushes and closes the workbook. In-memory instances close
// trivially.
func (db *DB) Close() error { return db.ds.Close() }

// Checkpoint writes a full checkpoint and compacts the WAL (durable
// workbooks only).
func (db *DB) Checkpoint() error { return db.ds.Checkpoint() }

// RecoveryErrors returns the per-command failures encountered while
// recovering a durable workbook in OpenFile; empty on a clean recovery.
func (db *DB) RecoveryErrors() []error { return db.ds.RecoveryErrors() }

// Health reports the workbook's degradation state: nil while healthy, an
// ErrReadOnly-classified error naming the original I/O failure once the
// workbook has degraded to read-only mode, or the last background
// checkpoint failure if one is pending. Reading Health does not consume the
// recorded checkpoint error (Checkpoint and Close do).
func (db *DB) Health() error { return db.ds.Health() }

// Degrade forces the workbook into degraded read-only mode, as if cause (or
// a generic fencing error when nil) had poisoned it. It is an operational
// fence — quarantine a suspect workbook while keeping reads available — and
// the hook fault harnesses use to produce a deterministically degraded
// instance. Degradation is permanent for this handle; reopen to clear it.
func (db *DB) Degrade(cause error) { db.ds.Degrade(cause) }

// Conn opens a new SQL connection: its own transaction state, concurrent
// with other connections. A single Conn must not be used concurrently.
func (db *DB) Conn() *Conn {
	return &Conn{db: db, c: db.ds.NewConn()}
}

// Prepare parses and analyzes a statement once for repeated execution with
// different '?' bindings, on any connection. Prepared statements survive in
// a shared plan cache keyed by text, so preparing the same text is cheap.
func (db *DB) Prepare(sql string) (*Stmt, error) { return db.conn.Prepare(sql) }

// Exec runs a statement on the default connection and materialises its
// outcome. See Conn.Exec.
func (db *DB) Exec(ctx context.Context, sql string, args ...any) (Result, error) {
	return db.conn.Exec(ctx, sql, args...)
}

// Query streams a SELECT on the default connection. See Conn.Query.
func (db *DB) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	return db.conn.Query(ctx, sql, args...)
}

// QueryScript executes a semicolon-separated SQL script (no placeholders),
// returning the result of the last statement.
func (db *DB) QueryScript(sql string) (Result, error) {
	res, err := db.ds.QueryScript(sql)
	return wrapResult(res), err
}

// --- spreadsheet surface ---

// SetCell enters user input into a cell exactly as typing into the grid:
// "=..." is a formula (including the DBSQL/DBTABLE binding formulas),
// anything else a literal. The returned wait func blocks until background
// recomputation triggered by the edit has finished.
func (db *DB) SetCell(sheetName, addr, input string) (wait func(), err error) {
	return db.ds.SetCell(sheetName, addr, input)
}

// Get returns the current value of one cell.
func (db *DB) Get(sheetName, addr string) (Value, error) { return db.ds.Get(sheetName, addr) }

// SetValues bulk-loads a dense matrix of literal values with its top-left
// corner at topLeft ("A1"). It is the fast path for imports: no per-cell
// input parsing, no edit routing to bound regions.
func (db *DB) SetValues(sheetName, topLeft string, rows [][]Value) error {
	return db.ds.SetValues(sheetName, topLeft, rows)
}

// GetRange returns the values of a range ("A1:D10") as a dense matrix.
func (db *DB) GetRange(sheetName, rng string) ([][]Value, error) {
	return db.ds.GetRange(sheetName, rng)
}

// CellCount returns the number of materialised cells of a sheet (windowed
// table bindings keep this far below the bound table's cardinality).
func (db *DB) CellCount(sheetName string) (int, error) { return db.ds.CellCount(sheetName) }

// Wait blocks until all background recomputation has finished.
func (db *DB) Wait() { db.ds.Wait() }

// AddSheet creates (or returns) a sheet with the given name.
func (db *DB) AddSheet(name string) error {
	_, err := db.ds.AddSheet(name)
	return err
}

// SheetNames lists the workbook's sheets in creation order.
func (db *DB) SheetNames() []string { return db.ds.Book().SheetNames() }

// ScrollTo moves the visible window of a sheet (fetch-on-demand panning for
// window-bound tables).
func (db *DB) ScrollTo(sheetName, topLeft string) error { return db.ds.ScrollTo(sheetName, topLeft) }

// VisibleValues returns the values of a sheet's current window.
func (db *DB) VisibleValues(sheetName string) ([][]Value, error) {
	return db.ds.VisibleValues(sheetName)
}

// ExportOptions configure ExportRange.
type ExportOptions struct {
	// PrimaryKey names the column(s) to declare as the primary key.
	PrimaryKey []string
	// KeepRegion leaves the original cells in place instead of replacing
	// them with a live table binding.
	KeepRegion bool
}

// ExportRange exports a sheet range as a new relational table: the schema is
// inferred from the header row and the data, the rows are inserted, and —
// unless KeepRegion is set — the region is replaced by a binding that keeps
// sheet and table in sync from then on.
func (db *DB) ExportRange(sheetName, rng, tableName string, opts ExportOptions) error {
	_, err := db.ds.CreateTableFromRange(sheetName, rng, tableName, core.ExportOptions{
		PrimaryKey: opts.PrimaryKey,
		KeepRegion: opts.KeepRegion,
	})
	return err
}

// ImportTable binds an existing relational table at the given anchor cell;
// the bound region stays in sync in both directions.
func (db *DB) ImportTable(sheetName, anchor, tableName string) error {
	_, err := db.ds.ImportTable(sheetName, anchor, tableName)
	return err
}

// ColumnInfo describes one column of a table.
type ColumnInfo struct {
	Name       string
	Type       string // "NUMERIC", "TEXT", "BOOLEAN" or "ANY"
	PrimaryKey bool
	NotNull    bool
}

// TableInfo describes one relational table.
type TableInfo struct {
	Name    string
	Columns []ColumnInfo
}

// Tables lists the relational tables of the workbook.
func (db *DB) Tables() []TableInfo {
	var out []TableInfo
	for _, t := range db.ds.DB().Tables() {
		out = append(out, tableInfo(t))
	}
	return out
}

// Table describes one table, or ErrTableNotFound.
func (db *DB) Table(name string) (TableInfo, error) {
	t, err := db.ds.DB().Table(name)
	if err != nil {
		return TableInfo{}, err
	}
	return tableInfo(t), nil
}

// RowCount returns the number of live rows of a table.
func (db *DB) RowCount(name string) (int, error) { return db.ds.DB().RowCount(name) }

func tableInfo(t *catalog.Table) TableInfo {
	info := TableInfo{Name: t.Name}
	for _, c := range t.Columns {
		info.Columns = append(info.Columns, ColumnInfo{
			Name:       c.Name,
			Type:       c.Type.String(),
			PrimaryKey: c.PrimaryKey,
			NotNull:    c.NotNull,
		})
	}
	return info
}

// Listen subscribes to data-change notifications for bound-region refresh or
// cache invalidation. The callback runs synchronously on the mutating
// goroutine; keep it fast. The returned cancel removes the subscription.
func (db *DB) Listen(fn func(table string)) (cancel func()) {
	return db.ds.DB().Listen(func(ev sqlexec.ChangeEvent) { fn(ev.Table) })
}

// PlanCacheStats reports prepared-plan cache counters (size, hits, misses).
type PlanCacheStats = sqlexec.PlanCacheStats

// PlanCache returns the shared prepared-plan cache counters.
func (db *DB) PlanCache() PlanCacheStats { return db.ds.DB().PlanCacheStats() }

// String implements fmt.Stringer for diagnostics.
func (db *DB) String() string {
	return fmt.Sprintf("dataspread.DB(%d tables)", len(db.ds.DB().Tables()))
}
