// Package client is the pure-Go network client for dataspreadd, the
// dataspread serving tier. It speaks the versioned length-prefixed frame
// protocol (handshake/auth, prepare, bind+execute with streaming row
// batches, transactions, cancel, ping, stats) over a single TCP connection
// and mirrors the embedded API's shape: Prepare/Exec/Query with positional
// or :name parameters, streaming Rows with Next/Scan/Err/Close, and typed
// errors — a failure crosses the wire as an error code, is re-attached to
// its dberr sentinel on this side, and classifies with errors.Is exactly
// like a local one (dataspread.ErrOverloaded, dataspread.ErrReadOnly, ...).
//
// A Client multiplexes nothing: one command is in flight at a time, and a
// Rows must be closed (or exhausted) before the next call. Cancellation is
// the exception — a context expiring mid-query sends an out-of-band CANCEL
// frame, and the server terminates the stream with a typed error frame.
//
// dslint:errdomain
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/internal/dberr"
	"github.com/dataspread/dataspread/internal/wire"
)

// Config configures Dial.
type Config struct {
	// Tenant and Token authenticate the connection; the session is bound
	// to this tenant's workbook for its lifetime.
	Tenant string
	Token  string
	// DialTimeout bounds the TCP connect plus handshake (default 10s).
	DialTimeout time.Duration
}

// Client is one authenticated session with a dataspreadd server. It is
// safe for concurrent use; commands serialize on an internal lock.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// wmu guards raw frame writes: command frames hold mu too, but a
	// CANCEL frame may be written by a context watcher mid-stream.
	wmu sync.Mutex
	// mu serializes commands; held for the full round-trip including any
	// streaming Rows (released by Rows.Close).
	mu sync.Mutex

	readOnly bool
	closed   atomic.Bool
	nextStmt uint64
}

// Dial connects and authenticates.
func Dial(addr string, cfg Config) (*Client, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, wrapNetErr(err))
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, c.fatal(fmt.Errorf("client: handshake deadline: %w", wrapNetErr(err)))
	}
	var b wire.Buf
	b.Uvarint(wire.ProtocolVersion)
	b.String(cfg.Tenant)
	b.String(cfg.Token)
	if err := c.writeFrame(wire.MsgHello, b.Bytes()); err != nil {
		return nil, c.fatal(err)
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, c.fatal(fmt.Errorf("client: handshake: %w", err))
	}
	if typ == wire.MsgError {
		return nil, c.fatal(wire.DecodeError(payload))
	}
	if typ != wire.MsgHelloOK {
		return nil, c.fatal(fmt.Errorf("client: unexpected handshake reply %#x: %w", typ, dberr.ErrCorrupt))
	}
	r := wire.NewReader(payload)
	version := r.Uvarint()
	flags := r.Byte()
	if err := r.Err(); err != nil {
		return nil, c.fatal(fmt.Errorf("client: malformed handshake reply: %w", err))
	}
	if version != wire.ProtocolVersion {
		return nil, c.fatal(fmt.Errorf("client: server speaks protocol %d, want %d: %w",
			version, wire.ProtocolVersion, dberr.ErrUnsupported))
	}
	c.readOnly = flags&wire.FlagReadOnly != 0
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, c.fatal(fmt.Errorf("client: clear handshake deadline: %w", wrapNetErr(err)))
	}
	return c, nil
}

// fatal closes the connection and returns err (dial/handshake path).
func (c *Client) fatal(err error) error {
	if cerr := c.conn.Close(); cerr != nil {
		return fmt.Errorf("%w (and closing: %v)", err, cerr)
	}
	return err
}

// ReadOnly reports whether the server flagged this tenant's workbook
// degraded (read-only) at handshake time.
func (c *Client) ReadOnly() bool { return c.readOnly }

// Close closes the connection. When the client is idle it says goodbye
// first; when a command or an unclosed Rows is still in flight it
// force-closes the transport instead of waiting (the in-flight operation
// fails with a transport error).
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if c.mu.TryLock() {
		if err := c.writeFrame(wire.MsgGoodbye, nil); err != nil {
			_ = err // best-effort farewell; the close below is what matters
		}
		c.mu.Unlock()
	}
	if err := c.conn.Close(); err != nil {
		return fmt.Errorf("client: close: %w", wrapNetErr(err))
	}
	return nil
}

// writeFrame writes one frame under the write lock and flushes.
func (c *Client) writeFrame(typ wire.MsgType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("client: flush: %w", wrapNetErr(err))
	}
	return nil
}

func (c *Client) readFrame() (wire.MsgType, []byte, error) {
	return wire.ReadFrame(c.br)
}

// sendCancel fires an out-of-band CANCEL at whatever command is in flight.
func (c *Client) sendCancel() {
	if err := c.writeFrame(wire.MsgCancel, nil); err != nil {
		_ = err // the transport is dying; the command will fail on its own
	}
}

// watchCtx cancels the in-flight command when ctx expires. Call the
// returned stop once the command's last frame has been consumed.
func (c *Client) watchCtx(ctx context.Context) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	stopCh := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			c.sendCancel()
		case <-stopCh:
		}
	}()
	return func() { once.Do(func() { close(stopCh) }) }
}

// Stmt is a statement prepared on the server.
type Stmt struct {
	c      *Client
	id     uint64
	sql    string
	nargs  int
	pnames []string
}

// Prepare parses and plans sql on the server.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prepareLocked(sql)
}

func (c *Client) prepareLocked(sql string) (*Stmt, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	c.nextStmt++
	id := c.nextStmt
	var b wire.Buf
	b.Uvarint(id)
	b.String(sql)
	if err := c.writeFrame(wire.MsgPrepare, b.Bytes()); err != nil {
		return nil, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, fmt.Errorf("client: prepare reply: %w", err)
	}
	if typ == wire.MsgError {
		return nil, wire.DecodeError(payload)
	}
	if typ != wire.MsgPrepareOK {
		return nil, fmt.Errorf("client: unexpected prepare reply %#x: %w", typ, dberr.ErrCorrupt)
	}
	r := wire.NewReader(payload)
	gotID := r.Uvarint()
	n := int(r.Uvarint())
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		names = append(names, r.String())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("client: malformed prepare reply: %w", err)
	}
	if gotID != id {
		return nil, fmt.Errorf("client: prepare reply for statement %d, want %d: %w", gotID, id, dberr.ErrCorrupt)
	}
	return &Stmt{c: c, id: id, sql: sql, nargs: n, pnames: names}, nil
}

// SQL returns the statement's text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams returns the number of parameter slots.
func (s *Stmt) NumParams() int { return s.nargs }

// ParamNames returns the per-slot parameter names ("" for positional '?').
func (s *Stmt) ParamNames() []string { return append([]string(nil), s.pnames...) }

// Close releases the statement on the server.
func (s *Stmt) Close() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.closed.Load() {
		return nil
	}
	var b wire.Buf
	b.Uvarint(s.id)
	if err := s.c.writeFrame(wire.MsgCloseStmt, b.Bytes()); err != nil {
		return err
	}
	_, err := s.c.awaitDone()
	return err
}

// encodeArgs splits args into the wire's positional and named sections.
// dataspread.NamedArg values (from dataspread.Named) travel as named.
func encodeArgs(b *wire.Buf, args []any) error {
	var pos []dataspread.Value
	var named []dataspread.NamedArg
	for _, a := range args {
		if na, ok := a.(dataspread.NamedArg); ok {
			v, err := dataspread.BindValue(na.Value)
			if err != nil {
				return fmt.Errorf("client: argument %q: %w", na.Name, err)
			}
			named = append(named, dataspread.NamedArg{Name: na.Name, Value: v})
			continue
		}
		v, err := dataspread.BindValue(a)
		if err != nil {
			return fmt.Errorf("client: argument %d: %w", len(pos)+1, err)
		}
		pos = append(pos, v)
	}
	b.Uvarint(uint64(len(pos)))
	for _, v := range pos {
		b.Value(v)
	}
	b.Uvarint(uint64(len(named)))
	for _, na := range named {
		b.String(na.Name)
		b.Value(na.Value.(dataspread.Value))
	}
	return nil
}

// Result is the outcome of a non-query statement.
type Result struct {
	RowsAffected int
}

// Exec runs the statement and waits for completion. ctx cancels it
// server-side.
func (s *Stmt) Exec(ctx context.Context, args ...any) (Result, error) {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.c.closed.Load() {
		return Result{}, fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	var b wire.Buf
	b.Uvarint(s.id)
	b.Byte(wire.ExecModeExec)
	if err := encodeArgs(&b, args); err != nil {
		return Result{}, err
	}
	if err := s.c.writeFrame(wire.MsgExecute, b.Bytes()); err != nil {
		return Result{}, err
	}
	stop := s.c.watchCtx(ctx)
	defer stop()
	affected, err := s.c.awaitDone()
	if err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: affected}, nil
}

// awaitDone reads frames until DONE (returning its affected count) or a
// typed error frame.
func (c *Client) awaitDone() (int, error) {
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return 0, fmt.Errorf("client: awaiting completion: %w", err)
		}
		switch typ {
		case wire.MsgDone:
			r := wire.NewReader(payload)
			affected := int(r.Uvarint())
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("client: malformed DONE: %w", err)
			}
			return affected, nil
		case wire.MsgError:
			return 0, wire.DecodeError(payload)
		default:
			return 0, fmt.Errorf("client: unexpected frame %#x awaiting completion: %w", typ, dberr.ErrCorrupt)
		}
	}
}

// Query runs the statement and streams its result. The returned Rows holds
// the client's command slot until Close; ctx expiring mid-stream cancels
// the query server-side and surfaces as a typed error from Rows.Err.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	s.c.mu.Lock()
	if s.c.closed.Load() {
		s.c.mu.Unlock()
		return nil, fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	var b wire.Buf
	b.Uvarint(s.id)
	b.Byte(wire.ExecModeQuery)
	if err := encodeArgs(&b, args); err != nil {
		s.c.mu.Unlock()
		return nil, err
	}
	if err := s.c.writeFrame(wire.MsgExecute, b.Bytes()); err != nil {
		s.c.mu.Unlock()
		return nil, err
	}
	stop := s.c.watchCtx(ctx)
	typ, payload, err := s.c.readFrame()
	if err != nil {
		stop()
		s.c.mu.Unlock()
		return nil, fmt.Errorf("client: query reply: %w", err)
	}
	if typ == wire.MsgError {
		stop()
		s.c.mu.Unlock()
		return nil, wire.DecodeError(payload)
	}
	if typ != wire.MsgRowHeader {
		stop()
		s.c.mu.Unlock()
		return nil, fmt.Errorf("client: unexpected query reply %#x: %w", typ, dberr.ErrCorrupt)
	}
	r := wire.NewReader(payload)
	ncols := int(r.Uvarint())
	cols := make([]string, 0, ncols)
	for i := 0; i < ncols; i++ {
		cols = append(cols, r.String())
	}
	if err := r.Err(); err != nil {
		stop()
		s.c.mu.Unlock()
		return nil, fmt.Errorf("client: malformed row header: %w", err)
	}
	// The command slot stays held; Rows.Close releases it.
	return &Rows{c: s.c, cols: cols, stop: stop}, nil
}

// Rows is a streamed query result. Iterate with Next/Scan, check Err, and
// always Close. Not safe for concurrent use.
type Rows struct {
	c    *Client
	cols []string
	stop func()

	batch  *wire.Reader
	remain int
	cur    []dataspread.Value
	err    error
	done   bool
	closed bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row.
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	for r.remain == 0 {
		typ, payload, err := r.c.readFrame()
		if err != nil {
			r.err = fmt.Errorf("client: streaming: %w", err)
			r.finish()
			return false
		}
		switch typ {
		case wire.MsgRowBatch:
			br := wire.NewReader(payload)
			r.remain = int(br.Uvarint())
			r.batch = br
			if r.remain == 0 {
				continue
			}
		case wire.MsgDone:
			r.finish()
			return false
		case wire.MsgError:
			// The server hit a fault mid-stream (or our cancel landed):
			// rows already delivered stand, and this is the typed cause.
			r.err = wire.DecodeError(payload)
			r.finish()
			return false
		default:
			r.err = fmt.Errorf("client: unexpected frame %#x in stream: %w", typ, dberr.ErrCorrupt)
			r.finish()
			return false
		}
	}
	if cap(r.cur) < len(r.cols) {
		r.cur = make([]dataspread.Value, len(r.cols))
	}
	r.cur = r.cur[:len(r.cols)]
	for i := range r.cur {
		r.cur[i] = r.batch.Value()
	}
	if err := r.batch.Err(); err != nil {
		r.err = fmt.Errorf("client: malformed row batch: %w", err)
		r.finish()
		return false
	}
	r.remain--
	return true
}

// finish ends the stream: the context watcher stops and the command slot
// is released.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	r.stop()
	r.c.mu.Unlock()
}

// Values returns the current row. The slice is reused by Next.
func (r *Rows) Values() []dataspread.Value { return r.cur }

// Scan stores the current row into dest pointers with the same conversions
// as the embedded API's Rows.Scan.
func (r *Rows) Scan(dest ...any) error {
	if len(r.cur) == 0 {
		return fmt.Errorf("client: Scan called without a successful Next: %w", dberr.ErrUnsupported)
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns: %w", len(dest), len(r.cur), dberr.ErrParamCount)
	}
	for i, d := range dest {
		if err := dataspread.ScanValue(r.cur[i], d); err != nil {
			return fmt.Errorf("client: column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Close cancels and drains an unfinished stream and releases the client
// for the next command.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if !r.done {
		// Tell the server to stop producing, then drain to the terminator
		// so the connection stays framed.
		r.c.sendCancel()
		for {
			typ, payload, err := r.c.readFrame()
			if err != nil {
				r.err = fmt.Errorf("client: draining canceled stream: %w", err)
				break
			}
			if typ == wire.MsgDone {
				break
			}
			if typ == wire.MsgError {
				// Expected: the cancellation's own error. Not a failure of
				// the rows the caller already consumed.
				_ = payload
				break
			}
		}
		r.finish()
	}
	return r.err
}

// Exec prepares (if needed) and executes sql in one call.
func (c *Client) Exec(ctx context.Context, sql string, args ...any) (Result, error) {
	st, err := c.Prepare(sql)
	if err != nil {
		return Result{}, err
	}
	res, err := st.Exec(ctx, args...)
	if cerr := st.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return res, err
}

// Query prepares and runs sql, streaming the result. The statement is
// released when the returned Rows closes... by the server, on session end;
// one-shot query statements are cheap because plans are cached server-side.
func (c *Client) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	st, err := c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(ctx, args...)
}

// Begin opens an explicit transaction on the session.
func (c *Client) Begin(ctx context.Context) error { return c.txCmd(ctx, wire.MsgBegin) }

// Commit commits the open transaction.
func (c *Client) Commit(ctx context.Context) error { return c.txCmd(ctx, wire.MsgCommit) }

// Rollback rolls back the open transaction.
func (c *Client) Rollback(ctx context.Context) error { return c.txCmd(ctx, wire.MsgRollback) }

func (c *Client) txCmd(ctx context.Context, typ wire.MsgType) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	if err := c.writeFrame(typ, nil); err != nil {
		return err
	}
	stop := c.watchCtx(ctx)
	defer stop()
	_, err := c.awaitDone()
	return err
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	if err := c.writeFrame(wire.MsgPing, nil); err != nil {
		return err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return fmt.Errorf("client: ping reply: %w", err)
	}
	if typ == wire.MsgError {
		return wire.DecodeError(payload)
	}
	if typ != wire.MsgPong {
		return fmt.Errorf("client: unexpected ping reply %#x: %w", typ, dberr.ErrCorrupt)
	}
	return nil
}

// ServerStats fetches the server's metrics snapshot (active sessions,
// per-tenant query counts and latency quantiles, admission rejections).
func (c *Client) ServerStats() (map[string]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, fmt.Errorf("client: connection closed: %w", dberr.ErrClosed)
	}
	if err := c.writeFrame(wire.MsgStats, nil); err != nil {
		return nil, err
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, fmt.Errorf("client: stats reply: %w", err)
	}
	if typ == wire.MsgError {
		return nil, wire.DecodeError(payload)
	}
	if typ != wire.MsgStatsReply {
		return nil, fmt.Errorf("client: unexpected stats reply %#x: %w", typ, dberr.ErrCorrupt)
	}
	var out map[string]any
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("client: decoding stats: %w", err)
	}
	return out, nil
}

// wrapNetErr classifies a transport error under the engine's taxonomy.
func wrapNetErr(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("%v: %w", err, context.DeadlineExceeded)
	}
	return fmt.Errorf("%v: %w", err, dberr.ErrIO)
}
