package dataspread

import (
	"fmt"
	"strings"
)

// NamedArg binds a value to a ':name' statement parameter. Build one with
// Named and pass it where a statement argument is expected:
//
//	stmt, _ := db.Prepare("SELECT title FROM movies WHERE year > :min AND year < :max")
//	rows, err := stmt.Query(ctx, dataspread.Named("max", 2000), dataspread.Named("min", 1990))
//
// Named arguments bind by name, so their order does not matter, and a name
// repeated inside the statement text binds once. An execution must either
// use named arguments for every parameter or pass plain values positionally
// (in slot order); mixing the two styles in one call is an error.
type NamedArg struct {
	// Name is the parameter name, without the ':' prefix (case-insensitive).
	Name string
	// Value is the argument value (any type BindValue accepts).
	Value any
}

// Named builds a NamedArg. It is the public bind surface for ':name'
// statement parameters.
func Named(name string, value any) NamedArg { return NamedArg{Name: name, Value: value} }

// bindStmtArgs resolves an argument list against a statement's parameter
// slots: plain values bind positionally, NamedArg values bind by name
// against the statement's ':name' parameters.
func bindStmtArgs(paramNames []string, args []any) ([]Value, error) {
	named := false
	for _, a := range args {
		if _, ok := a.(NamedArg); ok {
			named = true
			break
		}
	}
	if !named {
		return BindValues(args)
	}
	vals := make([]Value, len(paramNames))
	seen := make([]bool, len(paramNames))
	for _, a := range args {
		na, ok := a.(NamedArg)
		if !ok {
			return nil, fmt.Errorf("dataspread: cannot mix named and positional arguments in one execution: %w", ErrParamCount)
		}
		name := strings.ToLower(na.Name)
		idx := -1
		for i, n := range paramNames {
			if n != "" && n == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("dataspread: statement has no parameter %q: %w", na.Name, ErrParamCount)
		}
		if seen[idx] {
			return nil, fmt.Errorf("dataspread: parameter %q bound twice: %w", na.Name, ErrParamCount)
		}
		v, err := BindValue(na.Value)
		if err != nil {
			return nil, err
		}
		vals[idx] = v
		seen[idx] = true
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("dataspread: parameter %q not bound: %w", paramNames[i], ErrParamCount)
		}
	}
	return vals, nil
}
