package dataspread_test

// Tests of the public embeddable API: prepared statements with '?'
// bindings, streaming rows, context cancellation, the error taxonomy, and
// the acceptance criteria of the prepared-statement redesign (plan-cache
// hits with a preserved pk point access path).

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dataspread/dataspread"
)

func newTestDB(t *testing.T) *dataspread.DB {
	t.Helper()
	db := dataspread.New(dataspread.Options{})
	t.Cleanup(func() { db.Close() })
	return db
}

func loadN(t *testing.T, db *dataspread.DB, n int) {
	t.Helper()
	ctx := context.Background()
	if _, err := db.Exec(ctx, "CREATE TABLE items (id INT PRIMARY KEY, grp INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO items VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ins.Exec(ctx, i, i%10, fmt.Sprintf("item-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPreparedStatementBindings(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 100)

	q, err := db.Prepare("SELECT name FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.NumParams(); got != 1 {
		t.Fatalf("NumParams = %d, want 1", got)
	}
	for _, id := range []int{0, 7, 42, 99} {
		rows, err := q.Query(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		var name string
		if !rows.Next() {
			t.Fatalf("no row for id %d", id)
		}
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if want := fmt.Sprintf("item-%d", id); name != want {
			t.Fatalf("id %d: got %q, want %q", id, name, want)
		}
	}

	// Placeholders work in DML and in every clause.
	if res, err := db.Exec(ctx, "UPDATE items SET name = ? WHERE id BETWEEN ? AND ?", "renamed", 10, 12); err != nil {
		t.Fatal(err)
	} else if res.RowsAffected != 3 {
		t.Fatalf("update affected %d, want 3", res.RowsAffected)
	}
	if res, err := db.Exec(ctx, "DELETE FROM items WHERE grp IN (?, ?)", 8, 9); err != nil {
		t.Fatal(err)
	} else if res.RowsAffected != 20 {
		t.Fatalf("delete affected %d, want 20", res.RowsAffected)
	}

	// Binding the wrong number of arguments is a typed error.
	if _, err := q.Query(ctx); !errors.Is(err, dataspread.ErrParamCount) {
		t.Fatalf("want ErrParamCount, got %v", err)
	}
	if _, err := q.Query(ctx, 1, 2); !errors.Is(err, dataspread.ErrParamCount) {
		t.Fatalf("want ErrParamCount, got %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 5)

	if _, err := db.Query(ctx, "SELECT * FROM nosuch"); !errors.Is(err, dataspread.ErrTableNotFound) {
		t.Fatalf("want ErrTableNotFound, got %v", err)
	}
	if _, err := db.Exec(ctx, "CREATE TABLE items (id INT)"); !errors.Is(err, dataspread.ErrTableExists) {
		t.Fatalf("want ErrTableExists, got %v", err)
	}
	if _, err := db.Exec(ctx, "INSERT INTO items VALUES (1, 0, 'dup')"); !errors.Is(err, dataspread.ErrUniqueViolation) {
		t.Fatalf("want ErrUniqueViolation, got %v", err)
	}
	if _, err := db.Exec(ctx, "COMMIT"); !errors.Is(err, dataspread.ErrNoTx) {
		t.Fatalf("want ErrNoTx, got %v", err)
	}
	c := db.Conn()
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(ctx); !errors.Is(err, dataspread.ErrTxOpen) {
		t.Fatalf("want ErrTxOpen, got %v", err)
	}
	if err := c.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionRollback(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 10)

	c := db.Conn()
	if err := c.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "DELETE FROM items WHERE id >= 5"); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.RowCount("items"); n != 5 {
		t.Fatalf("mid-tx row count = %d, want 5", n)
	}
	if err := c.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.RowCount("items"); n != 10 {
		t.Fatalf("post-rollback row count = %d, want 10", n)
	}
}

func TestStreamingRowsDoNotMaterialize(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 2000)

	rows, err := db.Query(ctx, "SELECT id, name FROM items WHERE grp = ?", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) != 2 || cols[0] != "id" || cols[1] != "name" {
		t.Fatalf("columns = %v", cols)
	}
	n := 0
	for rows.Next() {
		var id int
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			t.Fatal(err)
		}
		if id%10 != 3 {
			t.Fatalf("row id %d does not match grp predicate", id)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("streamed %d rows, want 200", n)
	}

	// Abandoning a stream mid-way via Close releases the producer.
	rows, err = db.Query(ctx, "SELECT id FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil", err)
	}
}

// TestConcurrentPreparedStatement runs the same prepared statement from many
// sessions with different bindings (the -race build of `make race` checks
// the sharing).
func TestConcurrentPreparedStatement(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 5000)

	q, err := db.Prepare("SELECT name FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			conn := db.Conn()
			stmt := q.OnConn(conn)
			for i := 0; i < perWorker; i++ {
				id := (seed*2711 + i*37) % 5000
				rows, err := stmt.Query(ctx, id)
				if err != nil {
					errCh <- err
					return
				}
				if !rows.Next() {
					rows.Close()
					errCh <- fmt.Errorf("no row for id %d", id)
					return
				}
				var name string
				if err := rows.Scan(&name); err != nil {
					rows.Close()
					errCh <- err
					return
				}
				rows.Close()
				if want := fmt.Sprintf("item-%d", id); name != want {
					errCh <- fmt.Errorf("id %d: got %q want %q", id, name, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestCancellationMidScan cancels a context while a 50k-row scan streams and
// checks the query returns promptly with context.Canceled, leaking no
// goroutines.
func TestCancellationMidScan(t *testing.T) {
	db := newTestDB(t)
	loadN(t, db, 50_000)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	// LIKE keeps the predicate un-sargable, so this is a genuine full scan.
	rows, err := db.Query(ctx, "SELECT id, name FROM items WHERE name LIKE '%item%'")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row before cancelling")
	}
	start := time.Now()
	cancel()
	for rows.Next() {
		// drain whatever was already buffered
	}
	elapsed := time.Since(start)
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	rows.Close()
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// The producer goroutine must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPreparedPointQueryPlanCache is the redesign's acceptance check: a
// `WHERE id = ?` point query re-executed with different bindings hits the
// text-keyed plan cache AND still takes the pk point access path.
func TestPreparedPointQueryPlanCache(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 50_000)

	const q = "SELECT name FROM items WHERE id = ?"
	// EXPLAIN with a bound argument must show the pk point path.
	expl, err := db.Exec(ctx, "EXPLAIN "+q, 41_000)
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, row := range expl.Rows {
		plan.WriteString(row[0].AsString())
		plan.WriteString("\n")
	}
	if !strings.Contains(plan.String(), "pk point") {
		t.Fatalf("EXPLAIN of prepared point query does not use pk point path:\n%s", plan.String())
	}

	before := db.PlanCache()
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	const execs = 500
	for i := 0; i < execs; i++ {
		id := (i * 97) % 50_000
		res, err := stmt.Exec(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != fmt.Sprintf("item-%d", id) {
			t.Fatalf("exec %d: unexpected result %v", i, res.Rows)
		}
	}
	// Re-preparing the same text must be pure cache hits.
	for i := 0; i < execs; i++ {
		if _, err := db.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	after := db.PlanCache()
	if after.Misses != before.Misses+1 {
		t.Fatalf("prepared statement missed the plan cache %d times, want exactly 1 (before=%+v after=%+v)",
			after.Misses-before.Misses, before, after)
	}
	if after.Hits < before.Hits+execs {
		t.Fatalf("plan cache hits %d -> %d, want >= +%d", before.Hits, after.Hits, execs)
	}
}

func TestSpreadsheetSurface(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()

	set := func(addr, input string) {
		t.Helper()
		wait, err := db.SetCell("Sheet1", addr, input)
		if err != nil {
			t.Fatal(err)
		}
		wait()
	}
	set("A1", "2")
	set("A2", "40")
	set("A3", "=A1+A2")
	v, err := db.Get("Sheet1", "A3")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsNumber(); f != 42 {
		t.Fatalf("A3 = %v, want 42", v)
	}

	// Sheet data is queryable through RANGEVALUE, mixed with placeholders.
	rows, err := db.Query(ctx, "SELECT RANGEVALUE(A3) + ?", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no row")
	}
	var got float64
	if err := rows.Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("RANGEVALUE(A3) + 8 = %v, want 50", got)
	}
}

func TestListenCancel(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	var mu sync.Mutex
	events := 0
	cancel := db.Listen(func(string) {
		mu.Lock()
		events++
		mu.Unlock()
	})
	if _, err := db.Exec(ctx, "CREATE TABLE t (id INT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := events
	mu.Unlock()
	if after == 0 {
		t.Fatal("listener saw no events")
	}
	cancel()
	cancel() // idempotent
	if _, err := db.Exec(ctx, "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	final := events
	mu.Unlock()
	if final != after {
		t.Fatalf("listener fired after cancel: %d -> %d", after, final)
	}
}

// TestConcurrentReadersAndWriters races streaming readers against writers on
// the same table (the scenario the engine's reader/writer lock exists for;
// `make race` proves the absence of data races).
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 2000)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)

	// Writers: inserts, updates and deletes on dedicated connections.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			conn := db.Conn()
			next := 10_000 + seed
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch i % 3 {
				case 0:
					_, err = conn.Exec(ctx, "INSERT INTO items VALUES (?, ?, ?)", next, next%10, "fresh")
					next += 2
				case 1:
					_, err = conn.Exec(ctx, "UPDATE items SET name = ? WHERE id = ?", "touched", (seed*331+i)%2000)
				default:
					_, err = conn.Exec(ctx, "DELETE FROM items WHERE id = ?", 10_000+seed+(i%50)*2)
				}
				if err != nil && !errors.Is(err, dataspread.ErrUniqueViolation) {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Readers: streaming scans on their own connections.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := db.Conn()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := conn.Query(ctx, "SELECT id, name FROM items WHERE grp = ?", 3)
				if err != nil {
					errCh <- err
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					rows.Close()
					errCh <- err
					return
				}
				rows.Close()
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestFastQueryAlwaysHasColumns guards the header handoff: a query that
// completes before the caller reads the first row must still expose its
// column names.
func TestFastQueryAlwaysHasColumns(t *testing.T) {
	db := newTestDB(t)
	ctx := context.Background()
	loadN(t, db, 3)
	for i := 0; i < 300; i++ {
		rows, err := db.Query(ctx, "SELECT id, name FROM items LIMIT 1")
		if err != nil {
			t.Fatal(err)
		}
		if cols := rows.Columns(); len(cols) != 2 {
			t.Fatalf("iteration %d: columns = %v", i, cols)
		}
		for rows.Next() {
		}
		rows.Close()
	}
}

// TestTransactionWALScoping proves replay honours transaction boundaries
// across connections: rolled-back and uncommitted work never reaches the
// WAL, a concurrent autocommit insert between BEGIN and ROLLBACK survives,
// and committed transactions recover whole.
func TestTransactionWALScoping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wb.ds")
	ctx := context.Background()
	db, err := dataspread.OpenFile(path, dataspread.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, "CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)"); err != nil {
		t.Fatal(err)
	}
	a, b := db.Conn(), db.Conn()
	// A opens a transaction; B commits independently in the middle of it.
	if err := a.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(ctx, "INSERT INTO t VALUES (?, ?)", 1, "rolled-back"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(ctx, "INSERT INTO t VALUES (?, ?)", 2, "autocommit"); err != nil {
		t.Fatal(err)
	}
	if err := a.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	// A second transaction that commits.
	if err := a.Begin(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(ctx, "INSERT INTO t VALUES (?, ?)", 3, "committed"); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := dataspread.OpenFile(path, dataspread.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if errs := re.RecoveryErrors(); len(errs) != 0 {
		t.Fatalf("recovery errors: %v", errs)
	}
	res, err := re.Exec(ctx, "SELECT id, tag FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, fmt.Sprintf("%s=%s", row[0], row[1]))
	}
	want := []string{"2=autocommit", "3=committed"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered rows %v, want %v", got, want)
	}
}
