// Command quickstart is the smallest end-to-end tour of DataSpread: create a
// workbook, enter values and formulas, run SQL over sheet data, export a
// range as a relational table, and watch two-way sync keep everything
// consistent.
package main

import (
	"fmt"
	"log"

	"github.com/dataspread/dataspread/internal/core"
)

func main() {
	ds := core.New(core.Options{})

	// 1. Ordinary spreadsheet editing: literals and formulas.
	must(ds.SetCell("Sheet1", "A1", "10"))
	must(ds.SetCell("Sheet1", "A2", "32"))
	must(ds.SetCell("Sheet1", "A3", "=A1+A2"))
	v, _ := ds.Get("Sheet1", "A3")
	fmt.Println("A3 = A1+A2 =", v)

	// 2. Lay out a small table on the sheet and export it to the database
	//    (paper Figure 2b): the schema is inferred from the header row.
	data := [][]string{
		{"id", "item", "qty"},
		{"1", "bolt", "100"},
		{"2", "nut", "200"},
		{"3", "washer", "50"},
	}
	for r, row := range data {
		for c, cell := range row {
			must(ds.SetCell("Sheet1", fmt.Sprintf("%c%d", 'C'+c, r+1), cell))
		}
	}
	if _, err := ds.CreateTableFromRange("Sheet1", "C1:E4", "inventory", core.ExportOptions{PrimaryKey: []string{"id"}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported C1:E4 as table `inventory`")

	// 3. Arbitrary SQL over the database and the sheet together.
	res, err := ds.Query("SELECT item, qty FROM inventory WHERE qty >= RANGEVALUE(A1) * 5 ORDER BY qty DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items with qty >= 5*A1:")
	for _, row := range res.Rows {
		fmt.Printf("  %-8s %v\n", row[0], row[1])
	}

	// 4. A DBSQL formula spills a live query result into the sheet.
	must(ds.SetCell("Sheet1", "G1", `=DBSQL("SELECT SUM(qty) AS total FROM inventory")`))
	total, _ := ds.Get("Sheet1", "G2")
	fmt.Println("DBSQL total =", total)

	// 5. Two-way sync (paper Figure 2c): editing the bound region updates
	//    the database, and the DBSQL summary refreshes.
	must(ds.SetCell("Sheet1", "E2", "150")) // bolt qty: 100 -> 150
	ds.Wait()
	total, _ = ds.Get("Sheet1", "G2")
	fmt.Println("after editing the bound cell, total =", total)

	res, _ = ds.Query("SELECT qty FROM inventory WHERE id = 1")
	fmt.Println("database sees qty =", res.Rows[0][0])
}

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
