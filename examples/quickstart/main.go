// Command quickstart is the smallest end-to-end tour of DataSpread through
// its public API: create a workbook, enter values and formulas, run SQL over
// sheet data, export a range as a relational table, watch two-way sync keep
// everything consistent — then drive the same engine through prepared
// statements, streaming rows and plain database/sql.
package main

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"log"

	"github.com/dataspread/dataspread"
	_ "github.com/dataspread/dataspread/driver"
)

func main() {
	ctx := context.Background()
	db := dataspread.New(dataspread.Options{})
	defer db.Close()

	// 1. Ordinary spreadsheet editing: literals and formulas.
	must(db.SetCell("Sheet1", "A1", "10"))
	must(db.SetCell("Sheet1", "A2", "32"))
	must(db.SetCell("Sheet1", "A3", "=A1+A2"))
	v, _ := db.Get("Sheet1", "A3")
	fmt.Println("A3 = A1+A2 =", v)

	// 2. Lay out a small table on the sheet and export it to the database
	//    (paper Figure 2b): the schema is inferred from the header row.
	data := [][]string{
		{"id", "item", "qty"},
		{"1", "bolt", "100"},
		{"2", "nut", "200"},
		{"3", "washer", "50"},
	}
	for r, row := range data {
		for c, cell := range row {
			must(db.SetCell("Sheet1", fmt.Sprintf("%c%d", 'C'+c, r+1), cell))
		}
	}
	if err := db.ExportRange("Sheet1", "C1:E4", "inventory", dataspread.ExportOptions{PrimaryKey: []string{"id"}}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported C1:E4 as table `inventory`")

	// 3. Parameterized SQL over the database and the sheet together,
	//    streamed row by row. The statement plans once; '?' binds here.
	rows, err := db.Query(ctx,
		"SELECT item, qty FROM inventory WHERE qty >= RANGEVALUE(A1) * ? ORDER BY qty DESC", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items with qty >= 5*A1:")
	for rows.Next() {
		var item string
		var qty float64
		if err := rows.Scan(&item, &qty); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %v\n", item, qty)
	}
	rows.Close()

	// 4. A DBSQL formula spills a live query result into the sheet.
	must(db.SetCell("Sheet1", "G1", `=DBSQL("SELECT SUM(qty) AS total FROM inventory")`))
	total, _ := db.Get("Sheet1", "G2")
	fmt.Println("DBSQL total =", total)

	// 5. Two-way sync (paper Figure 2c): editing the bound region updates
	//    the database, and the DBSQL summary refreshes.
	must(db.SetCell("Sheet1", "E2", "150")) // bolt qty: 100 -> 150
	db.Wait()
	total, _ = db.Get("Sheet1", "G2")
	fmt.Println("after editing the bound cell, total =", total)

	var qty float64
	r2, _ := db.Query(ctx, "SELECT qty FROM inventory WHERE id = ?", 1)
	if r2.Next() {
		_ = r2.Scan(&qty)
	}
	r2.Close()
	fmt.Println("database sees qty =", qty)

	// 6. Typed errors: branch on the taxonomy instead of message strings.
	if _, err := db.Exec(ctx, "INSERT INTO inventory VALUES (?, ?, ?)", 1, "dup", 7); errors.Is(err, dataspread.ErrUniqueViolation) {
		fmt.Println("duplicate insert rejected with ErrUniqueViolation")
	}

	// 7. The same engine through plain database/sql, for programs that
	//    never need the spreadsheet surface.
	sqlDB, err := sql.Open("dataspread", ":memory:")
	if err != nil {
		log.Fatal(err)
	}
	defer sqlDB.Close()
	if _, err := sqlDB.ExecContext(ctx, "CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)"); err != nil {
		log.Fatal(err)
	}
	if _, err := sqlDB.ExecContext(ctx, "INSERT INTO kv VALUES (?, ?), (?, ?)", 1, "hello", 2, "world"); err != nil {
		log.Fatal(err)
	}
	var word string
	if err := sqlDB.QueryRowContext(ctx, "SELECT v FROM kv WHERE k = ?", 2).Scan(&word); err != nil {
		log.Fatal(err)
	}
	fmt.Println("database/sql says:", word)
}

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
