// Command gradebook reproduces the paper's introductory scenario: a course
// gradebook sheet and a demographics sheet, analysed with SQL instead of
// manual copy-paste — selecting students with a score above 90 in any
// assignment, and joining the two sheets to average grades per demographic
// group.
package main

import (
	"fmt"
	"log"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/sheet"
)

const students = 500

func main() {
	ds := core.New(core.Options{})

	// Gradebook on Sheet1 (header + 500 students x 5 assignments + grade).
	grades := datagen.Gradebook(students, 5, 1)
	loadMatrix(ds, "Sheet1", grades)

	// Demographics on a second sheet.
	ds.AddSheet("Demo")
	demo := datagen.Demographics(students, 2)
	loadMatrix(ds, "Demo", demo)

	gradeRange := fmt.Sprintf("A1:G%d", students+1)
	demoRange := fmt.Sprintf("Demo!A1:C%d", students+1)

	// Motivating operation 1: students with > 90 in at least one assignment.
	res, err := ds.Query(fmt.Sprintf(
		"SELECT student, a1, a2, a3, a4, a5 FROM RANGETABLE(%s) WHERE a1 > 90 OR a2 > 90 OR a3 > 90 OR a4 > 90 OR a5 > 90 ORDER BY student LIMIT 5",
		gradeRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("students with a score > 90 in some assignment (%d shown):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %v  %v %v %v %v %v\n", row[0], row[1], row[2], row[3], row[4], row[5])
	}

	// Motivating operation 2: average grade by demographic group (a join of
	// the two sheets plus GROUP BY — no VLOOKUP gymnastics required).
	res, err = ds.Query(fmt.Sprintf(
		"SELECT grp, COUNT(*) AS n, ROUND(AVG(grade), 2) AS avg_grade FROM RANGETABLE(%s) NATURAL JOIN RANGETABLE(%s) GROUP BY grp ORDER BY avg_grade DESC",
		gradeRange, demoRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naverage grade by demographic group:")
	for _, row := range res.Rows {
		fmt.Printf("  %-4v n=%-4v avg=%v\n", row[0], row[1], row[2])
	}

	// Motivating operation 3: the course software keeps appending actions to
	// a relational table; binding it with DBTABLE keeps the sheet current.
	if _, err := ds.Query("CREATE TABLE actions (id INT PRIMARY KEY, student TEXT, action TEXT)"); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.ImportTable("Sheet1", "J1", "actions"); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ds.Query(fmt.Sprintf("INSERT INTO actions VALUES (%d, 's%06d', 'submitted hw%d')", i, i, i)); err != nil {
			log.Fatal(err)
		}
	}
	ds.Wait()
	fmt.Println("\nlive-bound actions table (J1:L4):")
	vals, _ := ds.GetRange("Sheet1", "J1:L4")
	for _, row := range vals {
		fmt.Printf("  %-4v %-10v %v\n", row[0], row[1], row[2])
	}
}

func loadMatrix(ds *core.DataSpread, sheetName string, rows [][]sheet.Value) {
	sh, ok := ds.Book().Sheet(sheetName)
	if !ok {
		log.Fatalf("no sheet %s", sheetName)
	}
	sh.SetValues(sheet.Addr(0, 0), rows)
}
