// Command gradebook reproduces the paper's introductory scenario on the
// public API: a course gradebook sheet and a demographics sheet, analysed
// with SQL instead of manual copy-paste — selecting students with a score
// above 90 in any assignment, and joining the two sheets to average grades
// per demographic group.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/dataspread/dataspread"
)

const students = 500

func main() {
	ctx := context.Background()
	db := dataspread.New(dataspread.Options{})
	defer db.Close()

	// Gradebook on Sheet1 (header + 500 students x 5 assignments + grade),
	// demographics on a second sheet. Both are plain sheet data.
	rng := newRand(1)
	if err := db.SetValues("Sheet1", "A1", gradebook(rng)); err != nil {
		log.Fatal(err)
	}
	if err := db.AddSheet("Demo"); err != nil {
		log.Fatal(err)
	}
	if err := db.SetValues("Demo", "A1", demographics(rng)); err != nil {
		log.Fatal(err)
	}

	gradeRange := fmt.Sprintf("A1:G%d", students+1)
	demoRange := fmt.Sprintf("Demo!A1:C%d", students+1)

	// Motivating operation 1: students with > 90 in at least one
	// assignment. The threshold is a statement parameter.
	q := fmt.Sprintf(
		"SELECT student, a1, a2, a3, a4, a5 FROM RANGETABLE(%s) WHERE a1 > ? OR a2 > ? OR a3 > ? OR a4 > ? OR a5 > ? ORDER BY student LIMIT 5",
		gradeRange)
	rows, err := db.Query(ctx, q, 90, 90, 90, 90, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("students with a score > 90 in some assignment (5 shown):")
	for rows.Next() {
		r := rows.Values()
		fmt.Printf("  %v  %v %v %v %v %v\n", r[0], r[1], r[2], r[3], r[4], r[5])
	}
	rows.Close()

	// Motivating operation 2: average grade by demographic group (a join of
	// the two sheets plus GROUP BY — no VLOOKUP gymnastics required).
	res, err := db.Exec(ctx, fmt.Sprintf(
		"SELECT grp, COUNT(*) AS n, ROUND(AVG(grade), 2) AS avg_grade FROM RANGETABLE(%s) NATURAL JOIN RANGETABLE(%s) GROUP BY grp ORDER BY avg_grade DESC",
		gradeRange, demoRange))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naverage grade by demographic group:")
	for _, row := range res.Rows {
		fmt.Printf("  %-4v n=%-4v avg=%v\n", row[0], row[1], row[2])
	}

	// Motivating operation 3: the course software keeps appending actions
	// to a relational table; binding it with DBTABLE keeps the sheet
	// current. Appends run through one prepared statement.
	if _, err := db.Exec(ctx, "CREATE TABLE actions (id INT PRIMARY KEY, student TEXT, action TEXT)"); err != nil {
		log.Fatal(err)
	}
	if err := db.ImportTable("Sheet1", "J1", "actions"); err != nil {
		log.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO actions VALUES (?, ?, ?)")
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ins.Exec(ctx, i, fmt.Sprintf("s%06d", i), fmt.Sprintf("submitted hw%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	db.Wait()
	fmt.Println("\nlive-bound actions table (J1:L4):")
	vals, _ := db.GetRange("Sheet1", "J1:L4")
	for _, row := range vals {
		fmt.Printf("  %-4v %-10v %v\n", row[0], row[1], row[2])
	}
}

// --- tiny deterministic data generator (no imports beyond the public API) ---

type lcg struct{ state uint64 }

func newRand(seed uint64) *lcg { return &lcg{state: seed*6364136223846793005 + 1442695040888963407} }

func (r *lcg) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// gradebook builds header + per-student rows: student, a1..a5, grade.
func gradebook(r *lcg) [][]dataspread.Value {
	rows := [][]dataspread.Value{{
		dataspread.Text("student"), dataspread.Text("a1"), dataspread.Text("a2"),
		dataspread.Text("a3"), dataspread.Text("a4"), dataspread.Text("a5"),
		dataspread.Text("grade"),
	}}
	for i := 0; i < students; i++ {
		row := []dataspread.Value{dataspread.Text(fmt.Sprintf("s%06d", i+1))}
		sum := 0
		for a := 0; a < 5; a++ {
			score := 40 + r.intn(61)
			sum += score
			row = append(row, dataspread.Number(float64(score)))
		}
		row = append(row, dataspread.Number(float64(sum)/5))
		rows = append(rows, row)
	}
	return rows
}

// demographics builds header + per-student rows: student, grp, age.
func demographics(r *lcg) [][]dataspread.Value {
	rows := [][]dataspread.Value{{
		dataspread.Text("student"), dataspread.Text("grp"), dataspread.Text("age"),
	}}
	groups := []string{"A", "B", "C", "D"}
	for i := 0; i < students; i++ {
		rows = append(rows, []dataspread.Value{
			dataspread.Text(fmt.Sprintf("s%06d", i+1)),
			dataspread.Text(groups[r.intn(len(groups))]),
			dataspread.Number(float64(18 + r.intn(10))),
		})
	}
	return rows
}
