// Command sync reproduces the paper's Figure 2c demonstration (two-way table
// sync) and its large-table windowing story: a DBTABLE-bound region is edited
// on the sheet and the database follows; the database is updated with SQL and
// the sheet follows; and a million-row table is browsed through a small
// window that is fetched on demand while panning.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/sheet"
)

func main() {
	ds := core.New(core.Options{WindowRows: 25, WindowCols: 8})

	// --- Part 1: two-way sync on a small bound table (Figure 2c). ---
	if _, err := ds.QueryScript(`
		CREATE TABLE budget (line INT PRIMARY KEY, category TEXT, amount NUMERIC);
		INSERT INTO budget VALUES (1, 'travel', 1200), (2, 'equipment', 4000), (3, 'services', 800);
	`); err != nil {
		log.Fatal(err)
	}
	if _, err := ds.ImportTable("Sheet1", "A3", "budget"); err != nil {
		log.Fatal(err)
	}
	must(ds.SetCell("Sheet1", "A10", `=DBSQL("SELECT SUM(amount) AS total FROM budget")`))
	printTotal(ds, "initial total")

	// Front-end edit: the user types a new amount into the bound region.
	must(ds.SetCell("Sheet1", "C4", "1500")) // travel 1200 -> 1500
	ds.Wait()
	res, _ := ds.Query("SELECT amount FROM budget WHERE line = 1")
	fmt.Println("database sees travel =", res.Rows[0][0])
	printTotal(ds, "total after sheet edit")

	// Back-end edit: a SQL UPDATE refreshes the bound cells.
	if _, err := ds.Query("UPDATE budget SET amount = 5000 WHERE line = 2"); err != nil {
		log.Fatal(err)
	}
	ds.Wait()
	v, _ := ds.Get("Sheet1", "C5")
	fmt.Println("sheet sees equipment =", v)
	printTotal(ds, "total after SQL update")

	// --- Part 2: browsing a large table through the window. ---
	if _, err := ds.Query("CREATE TABLE readings (id INT PRIMARY KEY, sensor TEXT, value NUMERIC)"); err != nil {
		log.Fatal(err)
	}
	const n = 200_000
	fmt.Printf("\nloading %d rows into `readings`...\n", n)
	for i := 0; i < n; i++ {
		if _, err := ds.DB().Insert("readings", []sheet.Value{
			sheet.Number(float64(i)),
			sheet.String_(fmt.Sprintf("sensor%02d", i%37)),
			sheet.Number(float64(i % 1000)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	ds.AddSheet("Readings")
	start := time.Now()
	if _, err := ds.ImportTable("Readings", "A1", "readings"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bound %d rows in %v (only the visible window is materialised)\n", n, time.Since(start))

	// Pan to a few places; each pan pulls just one window from the database.
	for _, target := range []string{"A50000", "A125000", "A199000"} {
		start = time.Now()
		if err := ds.ScrollTo("Readings", target); err != nil {
			log.Fatal(err)
		}
		vals, _ := ds.VisibleValues("Readings")
		fmt.Printf("window at %-8s fetched in %-12v first visible row: id=%v sensor=%v value=%v\n",
			target, time.Since(start), vals[0][0], vals[0][1], vals[0][2])
	}
	sh, _ := ds.Book().Sheet("Readings")
	fmt.Printf("cells materialised for the 200k-row table: %d\n", sh.CellCount())
}

func printTotal(ds *core.DataSpread, label string) {
	v, _ := ds.Get("Sheet1", "A11")
	fmt.Printf("%s: %v\n", label, v)
}

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
