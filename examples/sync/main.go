// Command sync reproduces the paper's Figure 2c demonstration (two-way table
// sync) and its large-table windowing story on the public API: a
// DBTABLE-bound region is edited on the sheet and the database follows; the
// database is updated with SQL and the sheet follows; and a 200k-row table —
// bulk-loaded through one prepared statement — is browsed through a small
// window that is fetched on demand while panning. A context with a timeout
// guards the interactive queries.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/dataspread/dataspread"
)

func main() {
	ctx := context.Background()
	db := dataspread.New(dataspread.Options{WindowRows: 25, WindowCols: 8})
	defer db.Close()

	// --- Part 1: two-way sync on a small bound table (Figure 2c). ---
	if _, err := db.QueryScript(`
		CREATE TABLE budget (line INT PRIMARY KEY, category TEXT, amount NUMERIC);
		INSERT INTO budget VALUES (1, 'travel', 1200), (2, 'equipment', 4000), (3, 'services', 800);
	`); err != nil {
		log.Fatal(err)
	}
	if err := db.ImportTable("Sheet1", "A3", "budget"); err != nil {
		log.Fatal(err)
	}
	must(db.SetCell("Sheet1", "A10", `=DBSQL("SELECT SUM(amount) AS total FROM budget")`))
	printTotal(db, "initial total")

	// Front-end edit: the user types a new amount into the bound region.
	must(db.SetCell("Sheet1", "C4", "1500")) // travel 1200 -> 1500
	db.Wait()
	var amount float64
	row, err := db.Query(ctx, "SELECT amount FROM budget WHERE line = ?", 1)
	if err != nil {
		log.Fatal(err)
	}
	if row.Next() {
		_ = row.Scan(&amount)
	}
	row.Close()
	fmt.Println("database sees travel =", amount)
	printTotal(db, "total after sheet edit")

	// Back-end edit: a parameterized SQL UPDATE refreshes the bound cells.
	if _, err := db.Exec(ctx, "UPDATE budget SET amount = ? WHERE line = ?", 5000, 2); err != nil {
		log.Fatal(err)
	}
	db.Wait()
	v, _ := db.Get("Sheet1", "C5")
	fmt.Println("sheet sees equipment =", v)
	printTotal(db, "total after SQL update")

	// --- Part 2: browsing a large table through the window. ---
	if _, err := db.Exec(ctx, "CREATE TABLE readings (id INT PRIMARY KEY, sensor TEXT, value NUMERIC)"); err != nil {
		log.Fatal(err)
	}
	const n = 200_000
	fmt.Printf("\nloading %d rows into `readings` through one prepared statement...\n", n)
	ins, err := db.Prepare("INSERT INTO readings VALUES (?, ?, ?)")
	if err != nil {
		log.Fatal(err)
	}
	loadStart := time.Now()
	for i := 0; i < n; i++ {
		if _, err := ins.Exec(ctx, i, fmt.Sprintf("sensor%02d", i%37), i%1000); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded in %v (the INSERT planned once; %d executions bound fresh arguments)\n",
		time.Since(loadStart), n)

	if err := db.AddSheet("Readings"); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := db.ImportTable("Readings", "A1", "readings"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bound %d rows in %v (only the visible window is materialised)\n", n, time.Since(start))

	// Pan to a few places; each pan pulls just one window from the database.
	for _, target := range []string{"A50000", "A125000", "A199000"} {
		start = time.Now()
		if err := db.ScrollTo("Readings", target); err != nil {
			log.Fatal(err)
		}
		vals, _ := db.VisibleValues("Readings")
		fmt.Printf("window at %-8s fetched in %-12v first visible row: id=%v sensor=%v value=%v\n",
			target, time.Since(start), vals[0][0], vals[0][1], vals[0][2])
	}
	cells, _ := db.CellCount("Readings")
	fmt.Printf("cells materialised for the %d-row table: %d\n", n, cells)

	// A point query over the big table rides the primary-key B-tree; a
	// 100ms budget is generous because the plan is cached and the access
	// path is a point lookup.
	qctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	var sensor string
	pt, err := db.Query(qctx, "SELECT sensor FROM readings WHERE id = ?", 123_456%n)
	if err != nil {
		log.Fatal(err)
	}
	if pt.Next() {
		_ = pt.Scan(&sensor)
	}
	pt.Close()
	fmt.Println("point lookup under deadline:", sensor)
}

func printTotal(db *dataspread.DB, label string) {
	v, _ := db.Get("Sheet1", "A11")
	fmt.Printf("%s: %v\n", label, v)
}

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
