// Command netclient is the serving-tier tour: it boots an in-process
// dataspreadd server (the same internal/server package cmd/dataspreadd
// wraps — scaffolding so the example runs standalone; a real program
// would only import the client package and dial a running daemon), then
// drives it purely through the public network client: handshake/auth,
// prepared statements with ':name' parameters, streaming rows,
// transactions, a typed error crossing the wire, per-tenant isolation,
// server stats, and graceful shutdown draining an open stream.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/dataspread/dataspread"
	"github.com/dataspread/dataspread/client"
	"github.com/dataspread/dataspread/internal/server"
)

func main() {
	ctx := context.Background()

	// Scaffolding: a two-tenant server on a loopback port, one workbook
	// file per tenant under a temp data root. Production runs this as the
	// separate dataspreadd process (`go run ./cmd/dataspreadd -help`).
	dataRoot, err := os.MkdirTemp("", "netclient")
	must(err)
	defer os.RemoveAll(dataRoot)

	srv, err := server.New(server.Config{
		DataRoot: dataRoot,
		Tenants:  map[string]string{"acme": "s3cret", "globex": "hunter2"},
	})
	must(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// 1. Dial and authenticate. The session is bound to tenant "acme"'s
	//    workbook; a wrong token is rejected with ErrAuth.
	c, err := client.Dial(addr, client.Config{Tenant: "acme", Token: "s3cret"})
	must(err)
	defer c.Close()

	if _, err := client.Dial(addr, client.Config{Tenant: "acme", Token: "wrong"}); errors.Is(err, dataspread.ErrAuth) {
		fmt.Println("bad token rejected:", err)
	}

	// 2. DDL and a transaction-wrapped bulk load through one prepared
	//    statement — ':name' parameters bind by name, in any order.
	_, err = c.Exec(ctx, "CREATE TABLE orders (id NUMERIC PRIMARY KEY, item TEXT, qty NUMERIC)")
	must(err)

	ins, err := c.Prepare("INSERT INTO orders (id, item, qty) VALUES (:id, :item, :qty)")
	must(err)
	must(c.Begin(ctx))
	for i, item := range []string{"bolt", "nut", "washer", "gasket", "flange"} {
		_, err = ins.Exec(ctx,
			dataspread.Named("qty", (i+1)*100),
			dataspread.Named("id", i+1),
			dataspread.Named("item", item))
		must(err)
	}
	must(c.Commit(ctx))
	must(ins.Close())

	// 3. A streaming query: row batches arrive as the scan produces them,
	//    and Scan converts exactly like the embedded API.
	rows, err := c.Query(ctx,
		"SELECT item, qty FROM orders WHERE qty >= :min ORDER BY qty",
		dataspread.Named("min", 200))
	must(err)
	for rows.Next() {
		var item string
		var qty int
		must(rows.Scan(&item, &qty))
		fmt.Printf("order: %-8s qty %d\n", item, qty)
	}
	must(rows.Err())
	must(rows.Close())

	// 4. Errors cross the wire typed: the server sends an error code, the
	//    client re-attaches the sentinel, errors.Is works as if local.
	_, err = c.Query(ctx, "SELECT * FROM nope")
	fmt.Println("remote miss is ErrTableNotFound:", errors.Is(err, dataspread.ErrTableNotFound))

	// 5. Tenants are isolated workbooks: "globex" does not see "acme"'s
	//    tables.
	g, err := client.Dial(addr, client.Config{Tenant: "globex", Token: "hunter2"})
	must(err)
	_, err = g.Query(ctx, "SELECT * FROM orders")
	fmt.Println("other tenant sees no orders table:", errors.Is(err, dataspread.ErrTableNotFound))
	must(g.Close())

	// 6. Server-side observability: per-tenant query counts and latency
	//    percentiles over the same connection (also on the admin HTTP
	//    endpoint of the real daemon).
	stats, err := c.ServerStats()
	must(err)
	fmt.Println("tenants served:", len(stats["tenants"].(map[string]any)))

	// 7. Graceful shutdown drains in-flight streams: start a query, shut
	//    the server down concurrently, and the open stream still finishes.
	rows, err = c.Query(ctx, "SELECT id FROM orders")
	must(err)
	done := make(chan struct{})
	go func() {
		defer close(done)
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shctx)
	}()
	n := 0
	for rows.Next() {
		n++
	}
	must(rows.Err())
	must(rows.Close())
	<-done
	fmt.Printf("drained %d rows through a shutting-down server\n", n)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
