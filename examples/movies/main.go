// Command movies reproduces the paper's Figure 2a demonstration on the
// public API: a DBSQL spreadsheet formula whose SQL joins three relational
// tables (MOVIES, MOVIES2ACTORS, ACTORS) and filters them by parameters held
// in spreadsheet cells through RANGEVALUE. The result spills into a range of
// cells, and editing the parameter cells re-runs the query. The same query
// also runs as a prepared statement with '?' parameters — the two parameter
// mechanisms (positional cells for spreadsheet users, placeholders for
// programs) share one plan.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/dataspread/dataspread"
)

func main() {
	ctx := context.Background()
	db := dataspread.New(dataspread.Options{})
	defer db.Close()

	// Load a synthetic IMDB-style dataset through prepared inserts.
	if _, err := db.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		log.Fatal(err)
	}
	const (
		nMovies        = 2000
		actorsPerMovie = 5
	)
	r := newRand(42)
	nActors := loadDataset(ctx, db, r, nMovies, actorsPerMovie)
	credits := nMovies * actorsPerMovie
	fmt.Printf("loaded %d movies, %d actors, %d credits\n", nMovies, nActors, credits)

	// The user keeps the query parameters in B1 (actor id) and B2 (year).
	must(db.SetCell("Sheet1", "A1", "actor id:"))
	must(db.SetCell("Sheet1", "B1", "7"))
	must(db.SetCell("Sheet1", "A2", "after year:"))
	must(db.SetCell("Sheet1", "B2", "1980"))

	// The DBSQL formula in B3 — its output spans B3:C… (header + rows),
	// computed collectively in a single pass.
	must(db.SetCell("Sheet1", "B3", `=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year LIMIT 8")`))
	printSpill(db, "filmography of actor 7 after 1980")

	// Changing the referenced cells re-runs the query and refreshes the
	// spilled range — positional addressing in action.
	must(db.SetCell("Sheet1", "B1", "11"))
	must(db.SetCell("Sheet1", "B2", "1960"))
	db.Wait()
	printSpill(db, "after editing B1/B2 (actor 11, year > 1960)")

	// The program-facing twin: the same query as a prepared statement,
	// parameterized with '?' instead of cells, streamed instead of spilled.
	stmt, err := db.Prepare("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = ? AND year > ? ORDER BY year LIMIT 8")
	if err != nil {
		log.Fatal(err)
	}
	for _, params := range [][2]int{{7, 1980}, {11, 1960}} {
		rows, err := stmt.Query(ctx, params[0], params[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprepared query (actor %d, year > %d):\n", params[0], params[1])
		for rows.Next() {
			var title string
			var year int
			if err := rows.Scan(&title, &year); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s %d\n", title, year)
		}
		rows.Close()
	}
}

// loadDataset inserts the synthetic movie catalog and returns the actor
// count. Everything goes through prepared statements — one plan per table.
func loadDataset(ctx context.Context, db *dataspread.DB, r *lcg, nMovies, actorsPerMovie int) int {
	nActors := nMovies / 2
	insMovie := mustPrepare(db, "INSERT INTO movies VALUES (?, ?, ?)")
	insActor := mustPrepare(db, "INSERT INTO actors VALUES (?, ?)")
	insCredit := mustPrepare(db, "INSERT INTO movies2actors VALUES (?, ?)")
	for i := 0; i < nMovies; i++ {
		if _, err := insMovie.Exec(ctx, i, fmt.Sprintf("movie-%04d", i), 1950+r.intn(70)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nActors; i++ {
		if _, err := insActor.Exec(ctx, i, fmt.Sprintf("actor-%04d", i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nMovies; i++ {
		for a := 0; a < actorsPerMovie; a++ {
			if _, err := insCredit.Exec(ctx, i, r.intn(nActors)); err != nil {
				log.Fatal(err)
			}
		}
	}
	return nActors
}

func mustPrepare(db *dataspread.DB, sql string) *dataspread.Stmt {
	s, err := db.Prepare(sql)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func printSpill(db *dataspread.DB, label string) {
	fmt.Println("\n" + label + ":")
	vals, _ := db.GetRange("Sheet1", "B3:C12")
	for _, row := range vals {
		if row[0].IsEmpty() {
			continue
		}
		fmt.Printf("  %-16v %v\n", row[0], row[1])
	}
}

type lcg struct{ state uint64 }

func newRand(seed uint64) *lcg { return &lcg{state: seed*6364136223846793005 + 1442695040888963407} }

func (r *lcg) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 16
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
