// Command movies reproduces the paper's Figure 2a demonstration: a DBSQL
// spreadsheet formula whose SQL joins three relational tables (MOVIES,
// MOVIES2ACTORS, ACTORS) and filters them by parameters held in spreadsheet
// cells through RANGEVALUE. The result spills into a range of cells, and
// editing the parameter cells re-runs the query.
package main

import (
	"fmt"
	"log"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/datagen"
	"github.com/dataspread/dataspread/internal/sheet"
)

func main() {
	ds := core.New(core.Options{})

	// Load a synthetic IMDB-style dataset into the database.
	movies := datagen.MoviesDataset(2000, 5, 42)
	if _, err := ds.QueryScript(`
		CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, year INT);
		CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT);
		CREATE TABLE movies2actors (movieid INT, actorid INT);
	`); err != nil {
		log.Fatal(err)
	}
	bulkInsert(ds, "movies", movies.Movies)
	bulkInsert(ds, "actors", movies.Actors)
	bulkInsert(ds, "movies2actors", movies.Movies2Actors)
	fmt.Printf("loaded %d movies, %d actors, %d credits\n",
		len(movies.Movies), len(movies.Actors), len(movies.Movies2Actors))

	// The user keeps the query parameters in B1 (actor id) and B2 (year).
	must(ds.SetCell("Sheet1", "A1", "actor id:"))
	must(ds.SetCell("Sheet1", "B1", "7"))
	must(ds.SetCell("Sheet1", "A2", "after year:"))
	must(ds.SetCell("Sheet1", "B2", "1980"))

	// The DBSQL formula in B3 — its output spans B3:C… (header + rows),
	// computed collectively in a single pass.
	must(ds.SetCell("Sheet1", "B3", `=DBSQL("SELECT title, year FROM movies NATURAL JOIN movies2actors NATURAL JOIN actors WHERE actorid = RANGEVALUE(B1) AND year > RANGEVALUE(B2) ORDER BY year LIMIT 8")`))
	printResult(ds, "filmography of actor 7 after 1980")

	// Changing the referenced cells re-runs the query and refreshes the
	// spilled range — positional addressing in action.
	must(ds.SetCell("Sheet1", "B1", "11"))
	must(ds.SetCell("Sheet1", "B2", "1960"))
	ds.Wait()
	printResult(ds, "after editing B1/B2 (actor 11, year > 1960)")
}

func printResult(ds *core.DataSpread, label string) {
	fmt.Println("\n" + label + ":")
	vals, _ := ds.GetRange("Sheet1", "B3:C12")
	for _, row := range vals {
		if row[0].IsEmpty() {
			continue
		}
		fmt.Printf("  %-16v %v\n", row[0], row[1])
	}
}

func bulkInsert(ds *core.DataSpread, table string, rows [][]sheet.Value) {
	for _, row := range rows {
		if _, err := ds.DB().Insert(table, row); err != nil {
			log.Fatalf("insert into %s: %v", table, err)
		}
	}
}

func must(wait func(), err error) {
	if err != nil {
		log.Fatal(err)
	}
	if wait != nil {
		wait()
	}
}
