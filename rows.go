package dataspread

import (
	"fmt"

	"github.com/dataspread/dataspread/internal/sqlexec"
)

// Rows is a streaming query result. Iterate with Next/Scan and always Close
// (or exhaust) it; rows arrive as the storage scan produces them, so a large
// result is never materialised for single-source statements.
//
//	rows, err := db.Query(ctx, "SELECT id, title FROM movies WHERE year > ?", 1990)
//	...
//	defer rows.Close()
//	for rows.Next() {
//	    var id int
//	    var title string
//	    if err := rows.Scan(&id, &title); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is not safe for concurrent use.
type Rows struct {
	// exactly one of r (streaming) and mat (materialised fallback) is set.
	r   *sqlexec.Rows
	mat *Result
	pos int
	cur []Value
}

func materializedRows(res *sqlexec.Result) *Rows {
	r := wrapResult(res)
	return &Rows{mat: &r}
}

// Columns returns the output column names.
func (r *Rows) Columns() []string {
	if r.mat != nil {
		return append([]string(nil), r.mat.Columns...)
	}
	return r.r.Columns()
}

// Next advances to the next row, reporting whether one is available.
func (r *Rows) Next() bool {
	if r.mat != nil {
		if r.pos >= len(r.mat.Rows) {
			r.cur = nil
			return false
		}
		r.cur = r.mat.Rows[r.pos]
		r.pos++
		return true
	}
	if !r.r.Next() {
		r.cur = nil
		return false
	}
	r.cur = r.r.Row()
	return true
}

// Values returns the current row (valid after a true Next).
func (r *Rows) Values() []Value { return r.cur }

// Scan copies the current row into the destination pointers: *string,
// *float64, *int, *int64, *bool, *Value or *any. NULL scans as the zero
// value (nil for *any).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("dataspread: Scan called without a row (call Next first)")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("dataspread: Scan expects %d destination(s), got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.cur[i], d); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. Close before
// exhaustion is not an error; cancellation of the caller's context is.
func (r *Rows) Err() error {
	if r.mat != nil {
		return nil
	}
	return r.r.Err()
}

// Close stops the query and releases its resources. Idempotent.
func (r *Rows) Close() error {
	if r.mat != nil {
		r.pos = len(r.mat.Rows)
		r.cur = nil
		return nil
	}
	return r.r.Close()
}
