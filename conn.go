package dataspread

import (
	"context"
	"fmt"

	"github.com/dataspread/dataspread/internal/core"
	"github.com/dataspread/dataspread/internal/sqlexec"
	"github.com/dataspread/dataspread/internal/sqlparser"
)

// Conn is one SQL session: it carries explicit-transaction state (BEGIN /
// COMMIT / ROLLBACK) and must not be used from multiple goroutines at once.
// Any number of Conns may run concurrently against the same DB; writes are
// serialized by the engine.
type Conn struct {
	db *DB
	c  *core.Conn
}

// Result is the outcome of a non-query statement.
type Result struct {
	// RowsAffected is the number of rows the statement inserted, updated or
	// deleted (0 for DDL).
	RowsAffected int
	// Columns and Rows carry the materialised relation when the executed
	// statement was a query (Exec of a SELECT, QueryScript ending in one).
	Columns []string
	Rows    [][]Value
}

func wrapResult(res *sqlexec.Result) Result {
	if res == nil {
		return Result{}
	}
	return Result{RowsAffected: res.Affected, Columns: res.Columns, Rows: res.Rows}
}

// Prepare parses and analyzes a statement through the shared plan cache. The
// returned Stmt binds to this connection; Stmt.OnConn re-binds it to
// another.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	p, err := c.c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{conn: c, p: p}, nil
}

// Exec executes a statement with the given arguments and materialises its
// outcome. DML reports affected rows; SELECT/EXPLAIN return their relation
// in Result.Rows (use Query for streaming).
func (c *Conn) Exec(ctx context.Context, sql string, args ...any) (Result, error) {
	s, err := c.Prepare(sql)
	if err != nil {
		return Result{}, err
	}
	return s.Exec(ctx, args...)
}

// Query executes a SELECT (or EXPLAIN) with the given arguments and returns
// a streaming row iterator. The caller must exhaust or Close the rows.
func (c *Conn) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	s, err := c.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return s.Query(ctx, args...)
}

// Begin opens an explicit transaction on this connection (ErrTxOpen if one
// is already open).
func (c *Conn) Begin(ctx context.Context) error {
	_, err := c.Exec(ctx, "BEGIN")
	return err
}

// Commit commits the connection's open transaction (ErrNoTx without one).
func (c *Conn) Commit(ctx context.Context) error {
	_, err := c.Exec(ctx, "COMMIT")
	return err
}

// Rollback rolls back the connection's open transaction (ErrNoTx without
// one).
func (c *Conn) Rollback(ctx context.Context) error {
	_, err := c.Exec(ctx, "ROLLBACK")
	return err
}

// InTransaction reports whether an explicit transaction is open.
func (c *Conn) InTransaction() bool { return c.c.InTransaction() }

// Stmt is a prepared statement bound to a connection. The underlying plan is
// immutable and shared: executing the same Stmt (or the same SQL text) from
// many connections concurrently is safe, with per-execution bindings.
type Stmt struct {
	conn *Conn
	p    *sqlexec.Prepared
}

// SQL returns the statement's text.
func (s *Stmt) SQL() string { return s.p.SQL }

// NumParams returns how many parameter slots the statement binds ('?'
// placeholders, or distinct ':name' parameters).
func (s *Stmt) NumParams() int { return s.p.NumParams() }

// ParamNames returns the statement's parameter names by slot index:
// lower-cased ':name' names for a named statement, empty strings for
// positional '?' slots.
func (s *Stmt) ParamNames() []string { return append([]string(nil), s.p.ParamNames()...) }

// OnConn returns the same prepared statement bound to another connection.
func (s *Stmt) OnConn(c *Conn) *Stmt { return &Stmt{conn: c, p: s.p} }

// Exec executes the statement with the given arguments, materialising the
// outcome.
func (s *Stmt) Exec(ctx context.Context, args ...any) (Result, error) {
	vals, err := bindStmtArgs(s.p.ParamNames(), args)
	if err != nil {
		return Result{}, err
	}
	res, err := s.conn.c.ExecutePrepared(ctx, s.p, vals...)
	return wrapResult(res), err
}

// Query executes the statement as a streaming query. Only SELECT (and
// EXPLAIN) statements can be streamed.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	vals, err := bindStmtArgs(s.p.ParamNames(), args)
	if err != nil {
		return nil, err
	}
	if _, ok := s.p.Statement().(*sqlparser.SelectStmt); !ok {
		// EXPLAIN and other read-only statements materialise; mutating
		// statements must go through Exec.
		if sqlparser.Mutates(s.p.Statement()) {
			return nil, fmt.Errorf("dataspread: cannot stream a mutating statement; use Exec")
		}
		res, err := s.conn.c.ExecutePrepared(ctx, s.p, vals...)
		if err != nil {
			return nil, err
		}
		return materializedRows(res), nil
	}
	r, err := s.conn.c.StreamPrepared(ctx, s.p, vals...)
	if err != nil {
		return nil, err
	}
	return &Rows{r: r}, nil
}
